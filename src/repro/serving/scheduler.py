"""Async micro-batching scheduler: many concurrent clients, one hot engine.

A fitted searcher ranks a coalesced query matrix far cheaper than the same
queries dispatched one at a time — per-dispatch overhead (executor fan-out,
worker pipes, kernel dispatch) amortizes across the batch while every
batched kernel evaluates query rows independently.  The serving problem is
that real traffic arrives as *single* queries from many concurrent clients,
not as ready-made batches.  :class:`MicroBatchScheduler` closes that gap:

* **Ingestion** — clients submit single queries (or small batches) from any
  thread via :meth:`~MicroBatchScheduler.submit`, or from asyncio code via
  ``await scheduler.search(query, k)``.  Both return per-query results.
* **Coalescing** — a dedicated pump thread gathers pending requests into
  micro-batches under a ``max_batch`` / ``max_delay_us`` policy: a batch is
  flushed as soon as it is full, or when the oldest pending query has
  waited ``max_delay_us``.  Flush sizes are biased toward
  **autotuner-cheap shapes**: the shape-adaptive kernel table of
  :mod:`repro.circuits.autotune` is bucketed by powers of two, so partial
  flushes are trimmed to bucket boundaries (never below half the pending
  run) unless the pending count's bucket is already calibrated — serving
  traffic therefore exercises a handful of reusable shape classes instead
  of calibrating a long tail of odd batch sizes.
* **Dispatch** — coalesced batches go through the searcher's
  ``submit_serving`` seam.  On the sharded ``"processes"`` executor that
  path keeps several batches **in flight** on the shared-memory ring
  (bounded by ``max_in_flight`` and the searcher's ``serving_depth``):
  worker processes rank batch *N+1* while the pump demultiplexes batch
  *N*.
* **Demultiplexing** — per-query top-k rows are sliced out of the batch
  result and delivered to each awaiting future as a
  :class:`~repro.core.search.QueryResult`.  Coalescing is a transport
  concern, never a semantic one: every delivered row is **bitwise
  identical** to calling ``kneighbors_batch`` with that query alone (the
  deterministic engines' batched kernels are row-independent).
* **Backpressure** — the pending queue is bounded; once full, new
  submissions fast-fail with
  :class:`~repro.exceptions.ServingOverloadError` instead of queueing into
  unbounded latency.  :class:`ServingStats` counts everything.

Lifecycle follows the PR 4 idioms: ``with`` support, an idempotent
:meth:`~MicroBatchScheduler.close` that **drains** — pending and in-flight
queries are served, not dropped — and a :func:`weakref.finalize` safety net
(the pump thread references only the internal engine, so an abandoned
scheduler is collectable and its finalizer drains the pump).

The scheduler does not own the searcher: close the searcher (and its
executor) after the scheduler, the usual nesting of ``with`` blocks.  While
a scheduler is serving, route all of that searcher's traffic through it —
the shared-memory ring is single-dispatcher.
"""

from __future__ import annotations

import asyncio
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from typing import Dict, List, Optional

import numpy as np

from ..circuits.autotune import (
    calibrated_query_buckets,
    floor_bucket_size,
    shape_bucket,
)
from ..core.search import QueryResult
from ..exceptions import (
    ConfigurationError,
    SearchError,
    ServingError,
    ServingOverloadError,
)
from ..utils.validation import check_int_in_range


class ServingStats:
    """Thread-safe counters of one scheduler's serving activity.

    Attributes (all monotonic since construction):

    * ``enqueued`` — requests admitted to the pending queue,
    * ``rejected`` — requests fast-failed by admission control,
    * ``cancelled`` — requests whose future was cancelled before dispatch,
    * ``completed`` — requests delivered a result,
    * ``failed`` — requests delivered an exception,
    * ``batches`` — micro-batches dispatched,
    * ``coalesced`` — queries that shared their dispatch with at least one
      other query (i.e. rode in a batch of size >= 2),
    * ``trimmed`` — flushes shrunk to an autotuner bucket boundary,
    * ``batch_shapes`` — histogram ``{batch_size: count}`` of dispatched
      batch shapes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.enqueued = 0
        self.rejected = 0
        self.cancelled = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.coalesced = 0
        self.trimmed = 0
        self.batch_shapes: Dict[int, int] = {}

    def bump(self, **deltas: int) -> None:
        """Add ``deltas`` to the named counters (thread-safe)."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def record_batch(self, size: int, trimmed: bool) -> None:
        """Account one dispatched micro-batch of ``size`` queries."""
        with self._lock:
            self.batches += 1
            if size > 1:
                self.coalesced += size
            if trimmed:
                self.trimmed += 1
            self.batch_shapes[size] = self.batch_shapes.get(size, 0) + 1

    def snapshot(self) -> dict:
        """A consistent copy of every counter."""
        with self._lock:
            return {
                "enqueued": self.enqueued,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "coalesced": self.coalesced,
                "trimmed": self.trimmed,
                "batch_shapes": dict(self.batch_shapes),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServingStats({self.snapshot()!r})"


class _Request:
    """One admitted query waiting for (or riding in) a micro-batch."""

    __slots__ = ("query", "k", "future", "arrival")

    def __init__(self, query: np.ndarray, k: int, future: Future, arrival: float):
        self.query = query
        self.k = k
        self.future = future
        self.arrival = arrival


class _SchedulerEngine:
    """The scheduler's internals: queue, pump loop, dispatch, demux.

    Split from the :class:`MicroBatchScheduler` facade so the pump thread
    references only this object — dropping the last reference to the facade
    therefore leaves it collectable, and its finalizer calls :meth:`close`
    here, which drains the queue and stops the pump.
    """

    def __init__(
        self,
        searcher,
        max_batch: int,
        max_delay_s: float,
        max_queue: int,
        max_in_flight: int,
        prefer_calibrated_shapes: bool,
    ) -> None:
        self.searcher = searcher
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.max_queue = max_queue
        self.max_in_flight = max_in_flight
        self.prefer_calibrated_shapes = prefer_calibrated_shapes
        self.stats = ServingStats()
        self._cond = threading.Condition()
        self._pending: "deque[_Request]" = deque()
        self._inflight: "deque[tuple]" = deque()
        self._thread: Optional[threading.Thread] = None
        self._closing = False

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, query, k: int) -> Future:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if not self.searcher.is_fitted:
            raise SearchError("the served searcher must be fitted before serving")
        if query.shape[0] != self.searcher.num_features:
            raise SearchError(
                f"query has {query.shape[0]} features, "
                f"expected {self.searcher.num_features}"
            )
        if query.size and not np.all(np.isfinite(query)):
            raise SearchError("queries must contain only finite values")
        k = check_int_in_range(
            k, "k", minimum=1, maximum=self.searcher.num_entries
        )
        future: Future = Future()
        request = _Request(query, k, future, time.monotonic())
        with self._cond:
            if self._closing:
                raise ServingError("scheduler is closed")
            if len(self._pending) >= self.max_queue:
                self.stats.bump(rejected=1)
                raise ServingOverloadError(
                    f"serving queue is full ({self.max_queue} pending queries); "
                    "retry later or raise max_queue"
                )
            self._pending.append(request)
            self._ensure_pump()
            self._cond.notify_all()
        self.stats.bump(enqueued=1)
        return future

    # ------------------------------------------------------------------
    # Pump
    # ------------------------------------------------------------------
    def _ensure_pump(self) -> None:
        # Called under the condition lock.
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="repro-serving-pump", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                break
            if batch:
                self._dispatch(batch)
            self._collect_ready()
        while self._inflight:
            self._collect_oldest()

    def _head_run_length(self) -> int:
        """Pending requests coalescible with the head (same ``k``)."""
        run = 0
        head_k = self._pending[0].k
        for request in self._pending:
            if request.k != head_k:
                break
            run += 1
        return run

    def _flush_size(self, run: int) -> int:
        """How many of a pending run to flush when the delay window expires.

        Full batches flush whole.  Partial flushes are biased toward
        autotuner-cheap shapes: a run whose power-of-two shape bucket is
        already calibrated dispatches as-is (its kernels are table hits);
        otherwise the run is trimmed to the bucket boundary below — a
        reusable shape class, never less than half the run.  The remainder
        keeps its own arrival deadlines and rides the next flush.
        """
        size = min(run, self.max_batch)
        if (
            not self.prefer_calibrated_shapes
            or self._closing
            or size <= 1
            or size >= self.max_batch
        ):
            return size
        if shape_bucket(size) in calibrated_query_buckets():
            return size
        return floor_bucket_size(size)

    def _next_batch(self) -> Optional[List[_Request]]:
        """Gather the next micro-batch (None once closed and drained)."""
        with self._cond:
            while not self._pending and not self._closing:
                self._cond.wait()
            if not self._pending:
                return None
            deadline = self._pending[0].arrival + self.max_delay_s
            while not self._closing:
                if self._head_run_length() >= self.max_batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            run = self._head_run_length()
            size = self._flush_size(run)
            trimmed = size < min(run, self.max_batch)
            requests = []
            for _ in range(size):
                request = self._pending.popleft()
                # Claim the future; a client that cancelled while queueing
                # is dropped here, before its query costs any compute.
                if request.future.set_running_or_notify_cancel():
                    requests.append(request)
                else:
                    self.stats.bump(cancelled=1)
        if requests:
            self.stats.record_batch(len(requests), trimmed)
        return requests

    def _dispatch(self, requests: List[_Request]) -> None:
        queries = np.stack([request.query for request in requests])
        try:
            collect = self.searcher.submit_serving(queries, k=requests[0].k)
        except Exception as exc:  # deliver, never kill the pump
            self._deliver_failure(requests, exc)
            return
        self._inflight.append((collect, requests))

    def _collect_ready(self) -> None:
        """Demultiplex finished batches without stalling the pipeline.

        Collects while the in-flight window is full (a slot must free up
        before the next dispatch) and whenever no queries are pending (so
        results never sit undelivered while the pump would otherwise sleep).
        """
        while self._inflight:
            with self._cond:
                backlog = bool(self._pending) or self._closing
            if backlog and len(self._inflight) < self.max_in_flight:
                return
            self._collect_oldest()

    def _collect_oldest(self) -> None:
        collect, requests = self._inflight.popleft()
        try:
            indices, scores = collect()
        except Exception as exc:  # a worker died, the spool was reaped, ...
            self._deliver_failure(requests, exc)
            return
        searcher = self.searcher
        for position, request in enumerate(requests):
            result_indices = indices[position]
            result = QueryResult(
                indices=result_indices,
                scores=scores[position],
                labels=searcher.labels_for(result_indices),
            )
            if not request.future.cancelled():
                request.future.set_result(result)
        self.stats.bump(completed=len(requests))

    def _deliver_failure(self, requests: List[_Request], exc: BaseException) -> None:
        for request in requests:
            if not request.future.cancelled():
                request.future.set_exception(exc)
        self.stats.bump(failed=len(requests))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop intake, drain pending and in-flight queries, stop the pump."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()


class MicroBatchScheduler:
    """Coalesce many concurrent single-query clients into micro-batches.

    Parameters
    ----------
    searcher:
        A **fitted** searcher exposing the serving seam
        (``submit_serving`` / ``kneighbors_arrays`` / ``labels_for`` — every
        :class:`~repro.core.search.NearestNeighborSearcher` does).  The
        scheduler does not own it; close the searcher after the scheduler.
    max_batch:
        Largest coalesced batch; a batch flushes immediately once full.
    max_delay_us:
        Longest a pending query may wait for batch-mates, in microseconds.
        The latency the scheduler may *add* is bounded by roughly twice
        this (one window queueing, one more if a shape-biased flush leaves
        the query for the next batch).
    max_queue:
        Pending-queue bound: admission control fast-fails submissions with
        :class:`~repro.exceptions.ServingOverloadError` beyond it.
    max_in_flight:
        Dispatched batches that may be outstanding at once, capped at the
        searcher's ``serving_depth`` (the shared-memory ring depth on the
        ``"processes"`` executor).  Depth > 1 overlaps worker-side compute
        of one batch with demultiplexing and dispatch of the next.
    prefer_calibrated_shapes:
        Bias partial flushes toward the autotuner's power-of-two shape
        buckets (see :func:`repro.circuits.autotune.floor_bucket_size`).
        Never affects results, only batch shapes.

    Results delivered through the scheduler are bitwise identical to
    calling ``kneighbors_batch`` on the searcher directly with the same
    query — coalescing is a transport concern, never a semantic one.  The
    serving path targets the deterministic (ideal-sensing) engines; engines
    with stochastic sensing draw from a dispatch-dependent stream and are
    not reproducible under coalescing by construction.
    """

    def __init__(
        self,
        searcher,
        max_batch: int = 64,
        max_delay_us: float = 2000.0,
        max_queue: int = 1024,
        max_in_flight: int = 2,
        prefer_calibrated_shapes: bool = True,
    ) -> None:
        if not callable(getattr(searcher, "submit_serving", None)):
            raise ServingError(
                "searcher must expose the serving seam (submit_serving); "
                "every NearestNeighborSearcher does"
            )
        max_batch = check_int_in_range(max_batch, "max_batch", minimum=1)
        max_queue = check_int_in_range(max_queue, "max_queue", minimum=1)
        max_in_flight = check_int_in_range(max_in_flight, "max_in_flight", minimum=1)
        if not max_delay_us >= 0:
            raise ConfigurationError(f"max_delay_us must be >= 0, got {max_delay_us!r}")
        depth = getattr(searcher, "serving_depth", None)
        if depth is not None:
            max_in_flight = min(max_in_flight, int(depth))
        self._engine = _SchedulerEngine(
            searcher,
            max_batch=max_batch,
            max_delay_s=float(max_delay_us) * 1e-6,
            max_queue=max_queue,
            max_in_flight=max_in_flight,
            prefer_calibrated_shapes=bool(prefer_calibrated_shapes),
        )
        # Safety net: an abandoned scheduler drains and stops its pump at
        # garbage collection (the pump references the engine, not us).
        self._finalizer = weakref.finalize(self, self._engine.close)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def searcher(self):
        """The searcher being served."""
        return self._engine.searcher

    @property
    def stats(self) -> ServingStats:
        """Live serving counters."""
        return self._engine.stats

    @property
    def max_batch(self) -> int:
        return self._engine.max_batch

    @property
    def max_in_flight(self) -> int:
        """Effective in-flight bound (after the ``serving_depth`` cap)."""
        return self._engine.max_in_flight

    @property
    def max_queue(self) -> int:
        return self._engine.max_queue

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def submit(self, query, k: int = 1) -> Future:
        """Enqueue one query; the future resolves to its per-query result.

        Thread-safe and non-blocking: raises
        :class:`~repro.exceptions.ServingOverloadError` immediately when the
        pending queue is full, :class:`~repro.exceptions.ServingError` after
        :meth:`close`.  Cancelling the returned future before dispatch drops
        the query without costing any compute.
        """
        return self._engine.submit(query, k)

    def submit_many(self, queries, k: int = 1) -> List[Future]:
        """Enqueue a small client-side batch, one future per row.

        The rows coalesce like any other pending queries (with each other
        and with concurrent clients').  On overload, rows admitted before
        the bound was hit keep their futures; the raising row and the rest
        are not enqueued.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        return [self._engine.submit(row, k) for row in queries]

    async def search(self, query, k: int = 1):
        """Asyncio front-end: awaitable per-query result.

        Submission errors (overload, closed) raise in the caller;
        cancelling the awaiting task cancels the queued request.
        """
        return await asyncio.wrap_future(self._engine.submit(query, k))

    async def search_many(self, queries, k: int = 1) -> list:
        """Awaitable client-side batch: one result per row, in row order."""
        futures = self.submit_many(queries, k=k)
        return list(await asyncio.gather(*map(asyncio.wrap_future, futures)))

    def kneighbors(self, query, k: int = 1):
        """Blocking convenience wrapper: submit and wait for the result."""
        return self.submit(query, k=k).result()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop serving (idempotent).

        Intake stops immediately (submissions raise
        :class:`~repro.exceptions.ServingError`); queries already admitted
        — pending or in flight — are dispatched, demultiplexed and
        delivered before the pump exits.
        """
        self._finalizer()

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


__all__ = ["MicroBatchScheduler", "ServingStats"]

"""Serving layer: async micro-batching over a fitted searcher.

:class:`MicroBatchScheduler` coalesces single queries from many concurrent
clients into micro-batches, dispatches them through the executor/transport
seam with several batches in flight, and demultiplexes per-query top-k
results back to awaiting futures — bitwise identical to direct
``kneighbors_batch`` calls.  :mod:`repro.serving.loadgen` provides the
open- and closed-loop load generators behind the CI QPS/tail-latency
gates.
"""

from .loadgen import (
    LoadReport,
    direct_submitter,
    percentile,
    run_closed_loop,
    run_open_loop,
)
from .scheduler import MicroBatchScheduler, ServingStats

__all__ = [
    "LoadReport",
    "MicroBatchScheduler",
    "ServingStats",
    "direct_submitter",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]

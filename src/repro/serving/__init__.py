"""Serving layer: async micro-batching over fitted searchers.

:class:`MicroBatchScheduler` coalesces single queries from many concurrent
clients into micro-batches under an arrival-rate-adaptive flush window,
ranks mixed-``k`` batches once at ``max(k)`` (bitwise identical per-query
results), arbitrates multiple tenant lanes (:class:`ServingLane`) by
deficit round robin, dispatches through the executor/transport seam with
several batches in flight, and demultiplexes per-query top-k results back
to awaiting futures.  :mod:`repro.serving.loadgen` provides the open- and
closed-loop load generators (with shared warmup exclusion via
:class:`WarmupClock`) behind the CI QPS/tail-latency gates.
"""

from .loadgen import (
    LoadReport,
    WarmupClock,
    direct_submitter,
    percentile,
    run_closed_loop,
    run_open_loop,
)
from .scheduler import MicroBatchScheduler, ServingLane, ServingStats

__all__ = [
    "LoadReport",
    "MicroBatchScheduler",
    "ServingLane",
    "ServingStats",
    "WarmupClock",
    "direct_submitter",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]

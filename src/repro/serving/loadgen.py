"""Load generation and latency measurement for the serving scheduler.

Two complementary traffic models:

* :func:`run_closed_loop` — ``clients`` concurrent threads, each holding at
  most one request in flight (submit, wait, repeat).  Throughput-oriented:
  sustained QPS under a fixed concurrency level, the shape of the CI gate
  (64 concurrent single-query clients through the scheduler vs. the naive
  one-query-per-dispatch baseline of :func:`direct_submitter`).
* :func:`run_open_loop` — a single generator issuing queries on a fixed
  arrival schedule regardless of completions, the standard methodology for
  *tail* latency: unlike a closed loop, slow responses cannot throttle the
  arrival rate, so queueing delay shows up in p99 instead of hiding in a
  reduced request count (coordinated omission).

Both return a :class:`LoadReport` with sustained QPS and p50/p99 latency.
The generators target anything with a ``submit(query, k) -> Future``
method — the :class:`~repro.serving.scheduler.MicroBatchScheduler`, or the
baseline wrapper — and never interpret results beyond completion, so they
add no per-request overhead that would flatter either side.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..exceptions import ServingOverloadError


def percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation, or NaN."""
    if not len(latencies):
        return float("nan")
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Latencies are **milliseconds**, measured per request from submission to
    delivered result.  ``qps`` counts completed requests over the
    measurement window; rejected (overload fast-fail) and errored requests
    are tallied separately and excluded from the latency distribution.
    """

    completed: int = 0
    rejected: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99.0)

    @property
    def mean_ms(self) -> float:
        if not self.latencies_ms:
            return float("nan")
        return float(np.mean(self.latencies_ms))

    def summary(self) -> str:
        """One-line human-readable digest (benchmark records)."""
        return (
            f"qps={self.qps:.1f} p50={self.p50_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"completed={self.completed} rejected={self.rejected} errors={self.errors}"
        )


class _SerialDirect:
    """The pre-scheduler baseline: one query per dispatch, serialized.

    Wraps a searcher behind the same ``submit(query, k) -> Future``
    surface the load generators drive, but each call performs one
    single-query dispatch under a lock — exactly what concurrent clients
    sharing a searcher had before the scheduler existed (the executor
    transport is single-dispatcher, so callers must serialize).
    """

    def __init__(self, searcher):
        self._searcher = searcher
        self._lock = threading.Lock()

    def submit(self, query, k: int = 1) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            with self._lock:
                indices, scores = self._searcher.kneighbors_arrays(query, k=k)
        except Exception as exc:
            future.set_exception(exc)
        else:
            future.set_result((indices[0], scores[0]))
        return future


def direct_submitter(searcher) -> _SerialDirect:
    """A naive one-query-per-dispatch submitter over ``searcher``.

    The honest baseline for scheduler speedups: concurrent clients
    serialize on a lock because the underlying executor transport admits a
    single dispatcher.  Returns an object with the same
    ``submit(query, k) -> Future`` surface as the scheduler.
    """
    return _SerialDirect(searcher)


def run_closed_loop(
    target,
    queries: np.ndarray,
    clients: int = 8,
    requests_per_client: int = 32,
    k: int = 1,
) -> LoadReport:
    """Drive ``target.submit`` from ``clients`` threads, one request each in flight.

    Client ``c`` walks the query set starting at offset ``c`` (stride
    ``clients``), so all clients exercise the full set without coordinating.
    The measurement window spans first submission to last completion.
    """
    queries = np.asarray(queries, dtype=np.float64)
    report = LoadReport()
    lock = threading.Lock()

    def client(offset: int) -> None:
        for i in range(requests_per_client):
            row = queries[(offset + i * clients) % queries.shape[0]]
            start = time.perf_counter()
            try:
                target.submit(row, k=k).result()
            except ServingOverloadError:
                with lock:
                    report.rejected += 1
                continue
            except Exception:
                with lock:
                    report.errors += 1
                continue
            elapsed_ms = (time.perf_counter() - start) * 1e3
            with lock:
                report.completed += 1
                report.latencies_ms.append(elapsed_ms)

    threads = [
        threading.Thread(target=client, args=(c,), name=f"loadgen-{c}", daemon=True)
        for c in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - start
    return report


def run_open_loop(
    target,
    queries: np.ndarray,
    rate_qps: float,
    duration_s: float,
    k: int = 1,
) -> LoadReport:
    """Issue queries on a fixed arrival schedule for ``duration_s`` seconds.

    Arrivals are paced at ``rate_qps`` regardless of completions (the
    generator never waits on results), so queueing delay accumulates into
    the recorded tail instead of throttling the offered load.  Completions
    are recorded from future callbacks; the run waits for every in-flight
    request before reporting.
    """
    queries = np.asarray(queries, dtype=np.float64)
    interval = 1.0 / float(rate_qps)
    report = LoadReport()
    lock = threading.Lock()
    outstanding: List[Future] = []

    def on_done(start: float, future: Future) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with lock:
            if future.exception() is not None:
                report.errors += 1
            else:
                report.completed += 1
                report.latencies_ms.append(elapsed_ms)

    begin = time.perf_counter()
    issued = 0
    while True:
        now = time.perf_counter()
        if now - begin >= duration_s:
            break
        scheduled = begin + issued * interval
        if now < scheduled:
            time.sleep(min(scheduled - now, interval))
            continue
        row = queries[issued % queries.shape[0]]
        start = time.perf_counter()
        try:
            future = target.submit(row, k=k)
        except ServingOverloadError:
            with lock:
                report.rejected += 1
        else:
            future.add_done_callback(lambda f, s=start: on_done(s, f))
            outstanding.append(future)
        issued += 1
    for future in outstanding:
        try:
            future.result()
        except Exception:
            pass  # tallied by the callback
    report.duration_s = time.perf_counter() - begin
    return report


__all__ = [
    "LoadReport",
    "direct_submitter",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]

"""Load generation and latency measurement for the serving scheduler.

Two complementary traffic models:

* :func:`run_closed_loop` — ``clients`` concurrent threads, each holding at
  most one request in flight (submit, wait, repeat).  Throughput-oriented:
  sustained QPS under a fixed concurrency level, the shape of the CI gate
  (64 concurrent single-query clients through the scheduler vs. the naive
  one-query-per-dispatch baseline of :func:`direct_submitter`).
* :func:`run_open_loop` — a single generator issuing queries on a fixed
  arrival schedule regardless of completions, the standard methodology for
  *tail* latency: unlike a closed loop, slow responses cannot throttle the
  arrival rate, so queueing delay shows up in p99 instead of hiding in a
  reduced request count (coordinated omission).

Both return a :class:`LoadReport` with sustained QPS and p50/p95/p99
latency, and both support a **warmup phase** excluded from the measured
distribution: the first requests through a cold stack pay one-time costs
(pump start, executor spin-up, kernel autotuning, allocator warm-up) that
belong to none of the steady-state numbers the CI gates compare.  Warmup
exclusion and request timing share one helper, :class:`WarmupClock`, so
the two generators (and anything else that times requests, like the
benchmarks' direct-submitter baselines) cannot drift apart in *how* they
exclude — a request counts toward the measured distribution iff it was
*submitted* at or after the measurement cutoff.

The generators accept ``k`` as a single value or a sequence — a sequence
is cycled across requests (client ``c``'s ``i``-th request uses the same
schedule position as its query row), producing the deterministic mixed-
``k`` traffic the cross-``k`` coalescing gates replay against both
scheduler configurations.  They target anything with a
``submit(query, k) -> Future`` method — the
:class:`~repro.serving.scheduler.MicroBatchScheduler`, one of its
:class:`~repro.serving.scheduler.ServingLane` handles, or the baseline
wrapper — and never interpret results beyond completion, so they add no
per-request overhead that would flatter either side.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, ServingOverloadError

#: Worst-case wait the load generators put on any single future.  The
#: scheduler's own request deadlines fire long before this; the bound only
#: exists so a wedged pump fails a load run loudly instead of hanging it.
CLIENT_TIMEOUT_S = 120.0


def percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation, or NaN."""
    if not len(latencies):
        return float("nan")
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


class WarmupClock:
    """Shared monotonic clock with a warmup cutoff.

    Every request is timed with :meth:`now` (one monotonic source for both
    load generators and the baselines they compare, so no generator can
    mix clock domains), and the measured window opens only when
    :meth:`start_measurement` is called: :meth:`in_measurement` is the
    single definition of warmup exclusion — a request belongs to the
    measured distribution iff it was *submitted* at or after the cutoff.
    Keying on submission time (not completion) keeps the rule stable for
    requests that straddle the cutoff: a query submitted during warmup but
    completing after it still carries warmup costs and stays excluded.

    Before :meth:`start_measurement`, nothing is in measurement.
    """

    __slots__ = ("_cutoff",)

    def __init__(self) -> None:
        self._cutoff = float("inf")

    @staticmethod
    def now() -> float:
        """Monotonic timestamp in seconds (``time.perf_counter``)."""
        return time.perf_counter()

    @property
    def cutoff(self) -> float:
        """The measurement cutoff (``inf`` until measurement starts)."""
        return self._cutoff

    def start_measurement(self, at: Optional[float] = None) -> float:
        """Open the measured window (now, or at a known future instant).

        Returns the cutoff, which doubles as the measured window's origin
        for duration accounting.
        """
        self._cutoff = self.now() if at is None else float(at)
        return self._cutoff

    def in_measurement(self, start: float) -> bool:
        """Whether a request submitted at ``start`` counts as measured."""
        return start >= self._cutoff


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Latencies are **milliseconds**, measured per request from submission to
    delivered result.  ``qps`` counts completed requests over the
    measurement window; rejected (overload fast-fail) and errored requests
    are tallied separately and excluded from the latency distribution, and
    ``warmup`` counts requests excluded by the warmup cutoff (whatever
    their outcome).
    """

    completed: int = 0
    rejected: int = 0
    errors: int = 0
    warmup: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50.0)

    @property
    def p95_ms(self) -> float:
        return percentile(self.latencies_ms, 95.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99.0)

    @property
    def mean_ms(self) -> float:
        if not self.latencies_ms:
            return float("nan")
        return float(np.mean(self.latencies_ms))

    def summary(self) -> str:
        """One-line human-readable digest (benchmark records)."""
        return (
            f"qps={self.qps:.1f} p50={self.p50_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"completed={self.completed} rejected={self.rejected} errors={self.errors}"
        )


class _SerialDirect:
    """The pre-scheduler baseline: one query per dispatch, serialized.

    Wraps a searcher behind the same ``submit(query, k) -> Future``
    surface the load generators drive, but each call performs one
    single-query dispatch under a lock — exactly what concurrent clients
    sharing a searcher had before the scheduler existed (the executor
    transport is single-dispatcher, so callers must serialize).
    """

    def __init__(self, searcher: Any) -> None:
        self._searcher = searcher
        self._lock = threading.Lock()

    def submit(self, query: Any, k: int = 1) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            with self._lock:
                indices, scores = self._searcher.kneighbors_arrays(query, k=k)
        except Exception as exc:
            future.set_exception(exc)
        else:
            future.set_result((indices[0], scores[0]))
        return future


def direct_submitter(searcher: Any) -> _SerialDirect:
    """A naive one-query-per-dispatch submitter over ``searcher``.

    The honest baseline for scheduler speedups: concurrent clients
    serialize on a lock because the underlying executor transport admits a
    single dispatcher.  Returns an object with the same
    ``submit(query, k) -> Future`` surface as the scheduler.
    """
    return _SerialDirect(searcher)


def _k_schedule(k: Union[int, Sequence[int]]) -> List[int]:
    """Normalize a ``k`` spec to the non-empty list the generators cycle."""
    if np.isscalar(k):
        return [int(k)]
    ks = [int(value) for value in k]
    if not ks:
        raise ConfigurationError("k sequence must be non-empty")
    return ks


def run_closed_loop(
    target: Any,
    queries: np.ndarray,
    clients: int = 8,
    requests_per_client: int = 32,
    k: Union[int, Sequence[int]] = 1,
    warmup_per_client: int = 0,
) -> LoadReport:
    """Drive ``target.submit`` from ``clients`` threads, one request each in flight.

    Client ``c`` walks the query set starting at offset ``c`` (stride
    ``clients``), so all clients exercise the full set without coordinating;
    a ``k`` sequence is cycled on the same schedule, giving deterministic
    mixed-``k`` traffic.  With ``warmup_per_client`` > 0, each client first
    issues that many requests in a separate phase that completes (all
    threads joined) before the measurement window opens — those requests
    are tallied only in ``LoadReport.warmup``.  The measured window spans
    the post-warmup cutoff to the last completion.
    """
    queries = np.asarray(queries, dtype=np.float64)
    ks = _k_schedule(k)
    report = LoadReport()
    lock = threading.Lock()
    clock = WarmupClock()

    def client(offset: int, requests: int) -> None:
        for i in range(requests):
            position = offset + i * clients
            row = queries[position % queries.shape[0]]
            start = clock.now()
            try:
                target.submit(row, k=ks[position % len(ks)]).result(CLIENT_TIMEOUT_S)
            except ServingOverloadError:
                with lock:
                    if clock.in_measurement(start):
                        report.rejected += 1
                    else:
                        report.warmup += 1
                continue
            except Exception:
                with lock:
                    if clock.in_measurement(start):
                        report.errors += 1
                    else:
                        report.warmup += 1
                continue
            elapsed_ms = (clock.now() - start) * 1e3
            with lock:
                if clock.in_measurement(start):
                    report.completed += 1
                    report.latencies_ms.append(elapsed_ms)
                else:
                    report.warmup += 1

    def phase(requests: int) -> None:
        threads = [
            threading.Thread(
                target=client, args=(c, requests), name=f"loadgen-{c}", daemon=True
            )
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if warmup_per_client > 0:
        phase(warmup_per_client)
    begin = clock.start_measurement()
    phase(requests_per_client)
    report.duration_s = clock.now() - begin
    return report


def run_open_loop(
    target: Any,
    queries: np.ndarray,
    rate_qps: float,
    duration_s: float,
    k: Union[int, Sequence[int]] = 1,
    warmup_s: float = 0.0,
) -> LoadReport:
    """Issue queries on a fixed arrival schedule for ``duration_s`` seconds.

    Arrivals are paced at ``rate_qps`` regardless of completions (the
    generator never waits on results), so queueing delay accumulates into
    the recorded tail instead of throttling the offered load.  With
    ``warmup_s`` > 0, arrivals start that much earlier at the same rate and
    requests submitted before the cutoff are tallied only in
    ``LoadReport.warmup`` — the schedule never pauses, so the stack sees an
    uninterrupted arrival process while the measured window stays honest.
    A ``k`` sequence is cycled across arrivals in issue order.  Completions
    are recorded from future callbacks; the run waits for every in-flight
    request before reporting.
    """
    queries = np.asarray(queries, dtype=np.float64)
    interval = 1.0 / float(rate_qps)
    ks = _k_schedule(k)
    report = LoadReport()
    lock = threading.Lock()
    outstanding: List[Future] = []
    clock = WarmupClock()

    begin = clock.now()
    cutoff = clock.start_measurement(at=begin + float(warmup_s))
    total_s = float(warmup_s) + duration_s

    def on_done(start: float, future: Future) -> None:
        elapsed_ms = (clock.now() - start) * 1e3
        with lock:
            if not clock.in_measurement(start):
                report.warmup += 1
            elif future.exception() is not None:
                report.errors += 1
            else:
                report.completed += 1
                report.latencies_ms.append(elapsed_ms)

    issued = 0
    while True:
        now = clock.now()
        if now - begin >= total_s:
            break
        scheduled = begin + issued * interval
        if now < scheduled:
            time.sleep(min(scheduled - now, interval))
            continue
        row = queries[issued % queries.shape[0]]
        start = clock.now()
        try:
            future = target.submit(row, k=ks[issued % len(ks)])
        except ServingOverloadError:
            with lock:
                if clock.in_measurement(start):
                    report.rejected += 1
                else:
                    report.warmup += 1
        else:
            future.add_done_callback(lambda f, s=start: on_done(s, f))
            outstanding.append(future)
        issued += 1
    for future in outstanding:
        # Outcomes are tallied by the completion callback; the drain only
        # waits for stragglers.  exception() returns (never raises) the
        # request's failure, and the bound turns a wedged pump into a loud
        # TimeoutError instead of a hung load run.
        future.exception(CLIENT_TIMEOUT_S)
    report.duration_s = clock.now() - cutoff
    return report


__all__ = [
    "LoadReport",
    "WarmupClock",
    "direct_submitter",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]

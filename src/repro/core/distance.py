"""The proposed MCAM distance function in software-evaluable form.

Sec. III-B defines the distance between an input state ``I`` and a stored
state ``S`` of one cell as the cell conductance ``F(I, S) = G``, and the
distance between a query vector and a stored row as the sum of its cells'
conductances.  The paper points out that "the proposed distance function has
neither been used for NN search in software nor been derived from a circuit"
— this module makes it available as a plain software distance so it can be
studied independently of any CAM array:

* :class:`MCAMDistance` evaluates the distance from a conductance look-up
  table (the circuit-derived form),
* :func:`exponential_distance_profile` provides the idealized closed-form
  version (exponential growth with soft saturation) used by the
  distance-shape ablation, so the contribution of the exact FeFET curve can
  be separated from the contribution of "exponential-ish, saturating".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import check_bits, check_positive, check_state_matrix
from ..circuits.conductance_lut import ConductanceLUT, build_nominal_lut


@dataclass(frozen=True)
class MCAMDistance:
    """Distance function backed by a cell-conductance look-up table.

    Attributes
    ----------
    lut:
        The ``F(I, S) = G`` table; defaults (via :func:`for_bits`) to the
        nominal 3-bit table.
    """

    lut: ConductanceLUT

    @classmethod
    def for_bits(cls, bits: int = 3) -> "MCAMDistance":
        """Construct the distance function for a nominal ``bits``-bit cell."""
        return cls(lut=build_nominal_lut(bits=bits))

    @property
    def bits(self) -> int:
        """Bit precision of the underlying cell."""
        return self.lut.bits

    @property
    def num_states(self) -> int:
        """Number of states per cell."""
        return self.lut.num_states

    def pairwise(self, query_states: Any, stored_states: Any) -> float:
        """Distance between one query vector and one stored vector."""
        query = np.asarray(query_states)
        stored = np.asarray(stored_states)
        if query.shape != stored.shape or query.ndim != 1:
            raise ConfigurationError(
                f"query and stored vectors must be equal-length 1-D arrays, "
                f"got {query.shape} and {stored.shape}"
            )
        stored = check_state_matrix(stored.reshape(1, -1), self.num_states, "stored_states")
        query = check_state_matrix(query.reshape(1, -1), self.num_states, "query_states")[0]
        return float(self.lut.row_conductance(stored, query)[0])

    def to_rows(self, stored_rows: Any, query_states: Any) -> np.ndarray:
        """Distance from one query to every stored row (vectorized)."""
        distances: np.ndarray = self.lut.row_conductance(stored_rows, query_states)
        return distances

    def matrix(self, stored_rows: Any, query_rows: Any) -> np.ndarray:
        """Full distance matrix of shape ``(num_queries, num_rows)``."""
        stored = check_state_matrix(stored_rows, self.num_states, "stored_rows")
        queries = check_state_matrix(query_rows, self.num_states, "query_rows")
        if stored.shape[1] != queries.shape[1]:
            raise ConfigurationError(
                f"stored rows have width {stored.shape[1]} but queries have "
                f"width {queries.shape[1]}"
            )
        return np.stack([self.lut.row_conductance(stored, query) for query in queries])

    def profile(self) -> np.ndarray:
        """Mean cell distance as a function of the state separation ``|I - S|``."""
        profile: np.ndarray = self.lut.distance_by_separation()
        return profile


def exponential_distance_profile(
    num_states: int,
    growth_per_state: float = 4.0,
    saturation_level: Optional[float] = None,
    match_value: float = 1.0,
) -> np.ndarray:
    """Idealized closed-form MCAM distance profile.

    ``profile[d]`` is the per-cell distance contribution at state separation
    ``d``: an exponential ``match_value * growth_per_state**d`` softly clipped
    at ``saturation_level`` (harmonic blend), mimicking the
    subthreshold-exponential / on-current-saturated behaviour of the FeFET
    cell.  Used by the distance-shape ablation benchmark.

    Parameters
    ----------
    num_states:
        Number of cell states (profile length).
    growth_per_state:
        Multiplicative growth of the distance per unit separation.
    saturation_level:
        Soft upper bound; defaults to a tenth of the unsaturated value at the
        largest separation, which reproduces the FeFET curve's bent-over tail
        (the derivative peaks at intermediate distances and drops again).
    match_value:
        Value at separation zero.
    """
    if num_states < 2:
        raise ConfigurationError(f"num_states must be at least 2, got {num_states}")
    check_positive(growth_per_state, "growth_per_state")
    check_positive(match_value, "match_value")
    separations = np.arange(num_states, dtype=np.float64)
    raw = match_value * growth_per_state**separations
    if saturation_level is None:
        saturation_level = raw[-1] / 10.0
    check_positive(saturation_level, "saturation_level")
    blended = match_value + (raw - match_value) * saturation_level / (
        (raw - match_value) + saturation_level
    )
    return blended


def linear_distance_profile(num_states: int, slope: float = 1.0) -> np.ndarray:
    """Linear (ideal L1) per-cell distance profile, for the shape ablation."""
    if num_states < 2:
        raise ConfigurationError(f"num_states must be at least 2, got {num_states}")
    check_positive(slope, "slope")
    return slope * np.arange(num_states, dtype=np.float64)


def profile_to_lut(profile: np.ndarray, bits: int) -> ConductanceLUT:
    """Turn a per-separation distance profile into a symmetric look-up table.

    ``table[i, s] = profile[|i - s|]`` — lets any synthetic distance shape be
    plugged into the MCAM search engine for ablation studies.
    """
    bits = check_bits(bits)
    profile = np.asarray(profile, dtype=np.float64)
    n = 2**bits
    if profile.shape != (n,):
        raise ConfigurationError(
            f"profile must have length {n} for a {bits}-bit cell, got {profile.shape}"
        )
    if np.any(profile < 0) or np.any(~np.isfinite(profile)):
        raise ConfigurationError("profile values must be finite and non-negative")
    indices = np.arange(n)
    table = profile[np.abs(indices[:, np.newaxis] - indices[np.newaxis, :])]
    return ConductanceLUT(table_s=table, bits=bits)

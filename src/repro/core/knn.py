"""k-nearest-neighbor classification on top of any search engine.

The paper evaluates plain 1-NN classification (the CAM natively returns the
single best match).  A CAM can also report the top-k rows — by masking the
winning match line and repeating the sense operation, or with a multi-level
sense amplifier — so k-NN majority voting is a natural extension that
downstream users frequently want.  :class:`KNNClassifier` wraps any
:class:`~repro.core.search.NearestNeighborSearcher` (software, TCAM+LSH or
MCAM) and adds distance-weighted or unweighted voting over the k nearest
stored entries; with ``k=1`` it reduces exactly to the paper's setup.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Sequence

import numpy as np

from ..exceptions import SearchError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_choice, check_feature_matrix, check_int_in_range
from .search import NearestNeighborSearcher


class KNNClassifier:
    """Majority-vote k-NN classifier over a pluggable search engine.

    Parameters
    ----------
    searcher:
        Any fitted or unfitted nearest-neighbor searcher; :meth:`fit`
        delegates to it.
    k:
        Number of neighbors to vote over.
    weighting:
        ``"uniform"`` (each neighbor one vote) or ``"distance"`` (votes
        weighted by the reciprocal of the engine's score, so closer rows
        count more — for the MCAM the score is the ML conductance).
    """

    def __init__(
        self,
        searcher: NearestNeighborSearcher,
        k: int = 3,
        weighting: str = "uniform",
    ) -> None:
        self.searcher = searcher
        self.k = check_int_in_range(k, "k", minimum=1)
        self.weighting = check_choice(weighting, "weighting", ("uniform", "distance"))

    @property
    def is_fitted(self) -> bool:
        """Whether the underlying searcher has stored data."""
        return self.searcher.is_fitted

    def fit(self, features: Any, labels: Optional[Sequence[int]]) -> "KNNClassifier":
        """Store the labeled training data in the underlying searcher."""
        if labels is None:
            raise SearchError("KNNClassifier requires labels")
        self.searcher.fit(features, labels)
        if self.k > self.searcher.num_entries:
            raise SearchError(
                f"k ({self.k}) cannot exceed the number of stored entries "
                f"({self.searcher.num_entries})"
            )
        return self

    def predict_one(self, query: Any, rng: SeedLike = None) -> int:
        """Predicted label of a single query vector."""
        if not self.is_fitted:
            raise SearchError("classifier must be fitted before predicting")
        result = self.searcher.kneighbors(query, k=self.k, rng=rng)
        return self._vote(result.labels, result.scores)

    def _vote(self, labels: Any, scores: Any) -> int:
        """Majority (or distance-weighted) vote over one query's neighbors."""
        if any(label is None for label in labels):
            raise SearchError("stored entries must all be labeled for k-NN voting")
        if self.weighting == "uniform":
            votes = Counter(labels)
            best_count = max(votes.values())
            # Tie-break toward the label of the nearest neighbor.
            tied = {label for label, count in votes.items() if count == best_count}
            for label in labels:
                if label in tied:
                    return int(label)
        weights: Counter = Counter()
        for label, score in zip(labels, scores):
            weights[label] += 1.0 / (float(score) + 1e-18)
        return int(max(weights, key=weights.get))

    def _vote_batch(self, neighbor_labels: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Vote over every query's neighbors in one vectorized pass.

        Replicates :meth:`_vote` exactly, including its tie-breaking: among
        vote-count (or weight) ties the winner is the tied label whose first
        occurrence in the neighbor list is nearest, and weighted votes are
        accumulated in neighbor order so the float sums match bitwise.
        """
        num_queries, k = neighbor_labels.shape
        classes, codes = np.unique(neighbor_labels, return_inverse=True)
        codes = codes.reshape(num_queries, k)
        num_classes = classes.shape[0]
        flat = codes + np.arange(num_queries)[:, np.newaxis] * num_classes
        # First-occurrence position of every (query, label) pair; untouched
        # pairs keep the sentinel k so they lose every tie-break.
        first_pos = np.full((num_queries, num_classes), k, dtype=np.int64)
        np.minimum.at(
            first_pos,
            (np.repeat(np.arange(num_queries), k), codes.ravel()),
            np.tile(np.arange(k), num_queries),
        )
        if self.weighting == "uniform":
            tallies = np.bincount(flat.ravel(), minlength=num_queries * num_classes)
        else:
            weights = 1.0 / (scores.astype(np.float64) + 1e-18)
            tallies = np.bincount(
                flat.ravel(), weights=weights.ravel(), minlength=num_queries * num_classes
            )
        tallies = tallies.reshape(num_queries, num_classes)
        best = tallies.max(axis=1)
        tied = tallies == best[:, np.newaxis]
        winner_codes = np.where(tied, first_pos, k).argmin(axis=1)
        winners: np.ndarray = classes[winner_codes]
        return winners

    def predict(self, queries: Any, rng: SeedLike = None) -> np.ndarray:
        """Predicted labels for every row of ``queries``.

        The whole batch is served by one vectorized neighbor search followed
        by one vectorized voting kernel (:meth:`_vote_batch`); nothing loops
        per query.  Predictions are identical to a loop of
        :meth:`predict_one` calls.
        """
        if not self.is_fitted:
            raise SearchError("classifier must be fitted before predicting")
        queries = check_feature_matrix(queries, "queries")
        generator = ensure_rng(rng)
        result = self.searcher.kneighbors_batch(queries, k=self.k, rng=generator)
        neighbor_labels = np.asarray(result.labels)
        if not np.issubdtype(neighbor_labels.dtype, np.integer):
            # None entries (unlabeled rows) or non-integer label types: fall
            # back to the per-query vote, which validates them and applies
            # the same int() winner cast a predict_one call would.
            return np.asarray(
                [self._vote(result.labels[i], result.scores[i]) for i in range(len(result))]
            )
        return self._vote_batch(neighbor_labels, np.asarray(result.scores))

    def score(self, queries: Any, labels: Any, rng: SeedLike = None) -> float:
        """Classification accuracy on a labeled query set."""
        labels = np.asarray(labels)
        predictions = self.predict(queries, rng=rng)
        if predictions.shape != labels.shape:
            raise SearchError(
                f"labels have shape {labels.shape}, expected {predictions.shape}"
            )
        return float(np.mean(predictions == labels))

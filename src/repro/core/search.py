"""Nearest-neighbor search engines: the three implementations of Sec. IV-A.

The paper evaluates three NN-search implementations on identical real-valued
features:

1. **Software (GPU)** — floating-point cosine or Euclidean distance over the
   raw features (:class:`SoftwareSearcher`),
2. **TCAM+LSH** — random-hyperplane LSH signatures stored in a TCAM searched
   by minimum Hamming distance (:class:`TCAMLSHSearcher`),
3. **FeFET MCAM** — features quantized to the cell precision, stored in an
   MCAM and searched in a single step with the proposed conductance distance
   function (:class:`MCAMSearcher`).

All engines implement the same :class:`NearestNeighborSearcher` interface
(`fit`, `kneighbors`, `kneighbors_batch`, `predict`), so the accuracy
harness and the examples can swap them freely.  Queries are evaluated in
vectorized batches: :meth:`NearestNeighborSearcher.kneighbors_batch` ranks
an entire query matrix in one pass over the programmed array state, which is
built once per :meth:`fit` and reused across queries.

Engines are discoverable by string through the **backend registry**:
:func:`register_backend` associates a name with a factory, and
:func:`make_searcher` (or :func:`get_backend`) resolves names such as
``"mcam-3bit"`` or ``"cosine"`` without callers having to import the
concrete classes.  Third-party backends plug in the same way::

    @register_backend("my-engine")
    def _make_my_engine(num_features, **config):
        return MyEngine(...)

    searcher = make_searcher("my-engine", num_features=64)
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SearchError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_bits, check_feature_matrix, check_int_in_range
from ..circuits.conductance_lut import ConductanceLUT
from ..circuits.mcam_array import MCAMArray
from ..circuits.sense_amplifier import IdealWinnerTakeAll, sense_all
from ..circuits.tcam import TCAMArray
from ..devices.variation import VariationModel
from ..distance.metrics import get_batch_metric, get_matrix_metric
from ..encoding.lsh import RandomHyperplaneLSH
from .quantization import UniformQuantizer


def _stable_smallest_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the ``k`` smallest scores, ties toward lower index.

    Selects exactly the first ``k`` columns of
    ``np.argsort(scores, axis=1, kind="stable")`` — i.e. the ``k``
    lexicographically smallest ``(score, index)`` pairs per row — without
    paying for a full stable sort when ``k`` is small.
    """
    num_queries, num_entries = scores.shape
    if k == 1:
        # argmin returns the first occurrence of the minimum: stable top-1.
        return np.argmin(scores, axis=1).reshape(-1, 1)
    if 4 * k >= num_entries:
        return np.argsort(scores, axis=1, kind="stable")[:, :k]
    # Candidates are every entry not larger than the k-th smallest value;
    # ties at that threshold are resolved toward the lower index, matching
    # a stable sort.
    thresholds = np.partition(scores, k - 1, axis=1)[:, k - 1]
    top = np.empty((num_queries, k), dtype=np.int64)
    for q in range(num_queries):
        candidates = np.flatnonzero(scores[q] <= thresholds[q])
        order = np.argsort(scores[q][candidates], kind="stable")
        top[q] = candidates[order[:k]]
    return top


def slice_topk(
    indices: np.ndarray, scores: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The top-``k`` prefix of a deeper top-``k_max`` ranking — exact.

    Every engine (and the sharded cross-shard merge) ranks by the
    lexicographically smallest ``(score, global index)`` pairs with stable
    tie-breaking, so column ``j`` of a ranking at depth ``k_max`` is
    identical to column ``j`` of a ranking at any depth ``k <= k_max`` —
    per query, per shard count, per executor.  Slicing the first ``k``
    columns of a deeper ranking is therefore **bitwise identical** to
    ranking at ``k`` directly.  The serving scheduler's cross-``k``
    coalescing leans on exactly this: a mixed-``k`` micro-batch is ranked
    once at ``max(k)`` and each client's rows are sliced here at
    demultiplex time.
    """
    return indices[..., :k], scores[..., :k]


@dataclass(frozen=True)
class QueryResult:
    """Result of a k-nearest-neighbor query.

    Attributes
    ----------
    indices:
        Indices of the ``k`` nearest stored entries, closest first.
    scores:
        The engine's internal score for each returned index (conductance,
        Hamming distance or metric distance); smaller is closer.
    labels:
        Labels of the returned entries (``None`` entries when unlabeled).
    """

    indices: np.ndarray
    scores: np.ndarray
    labels: tuple


@dataclass(frozen=True)
class BatchQueryResult:
    """Result of a k-nearest-neighbor query for a whole batch of queries.

    Attributes
    ----------
    indices:
        Indices of the ``k`` nearest stored entries per query, closest
        first; shape ``(num_queries, k)``.
    scores:
        Engine score per returned index (smaller is closer); shape
        ``(num_queries, k)``.
    labels:
        Tuple of per-query label tuples (``None`` entries when unlabeled).
    """

    indices: np.ndarray
    scores: np.ndarray
    labels: tuple

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def __getitem__(self, index: int) -> QueryResult:
        """The ``index``-th query's result as a single-query QueryResult."""
        return QueryResult(
            indices=self.indices[index],
            scores=self.scores[index],
            labels=self.labels[index],
        )


class NearestNeighborSearcher(abc.ABC):
    """Common interface of all NN-search engines."""

    def __init__(self) -> None:
        self._labels: Optional[np.ndarray] = None
        self._num_entries = 0
        self._num_features = 0

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of stored data points."""
        return self._num_entries

    @property
    def num_features(self) -> int:
        """Feature width of the stored data (0 before :meth:`fit`)."""
        return self._num_features

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._num_entries > 0

    def calibrate(self, features: Any) -> "NearestNeighborSearcher":
        """Freeze data-dependent preprocessing on ``features`` (no-op by default).

        Engines with data-dependent preprocessing (the MCAM's quantizer
        calibration, the LSH encoder's centering) normally fit it inside
        :meth:`fit`.  Sharded execution calls :meth:`calibrate` with the
        *full* stored feature matrix before fitting each shard on its slice,
        so every shard quantizes/encodes exactly like one unsharded engine
        would — the precondition for bitwise-identical sharded results.
        """
        features = check_feature_matrix(features, "features")
        self._calibrate(features)
        return self

    def _calibrate(self, features: np.ndarray) -> None:
        """Engine-specific calibration hook; the default does nothing."""

    def adopt_calibration(self, source: "NearestNeighborSearcher") -> bool:
        """Copy frozen preprocessing from an already-calibrated sibling.

        Sharded execution calibrates one shard engine on the full store and
        shares that state with the remaining shards instead of recomputing
        the full-store calibration per shard.  Returns False when ``source``
        is incompatible (the caller falls back to :meth:`calibrate`); the
        default implementation supports nothing.
        """
        return False

    def calibration_token(self) -> Any:
        """Hashable fingerprint of the frozen data-dependent preprocessing.

        ``None`` means the engine has no data-dependent preprocessing (the
        software metrics) or has not been calibrated yet.  The sharded
        append path compares tokens before and after recalibrating on a
        grown store: an unchanged token proves the stored representation of
        untouched shards is still valid, so only the shards that received
        new rows need a refit.
        """
        return None

    def calibration_fingerprint(self) -> Optional[str]:
        """Stable hex digest of :meth:`calibration_token` (None when absent).

        The storage tier records this in snapshot manifests and re-derives
        it from the restored engine, so a snapshot whose calibration state
        does not survive the round trip is rejected instead of served.
        """
        token = self.calibration_token()
        if token is None:
            return None
        return hashlib.sha256(repr(token).encode("utf-8")).hexdigest()

    def fit(
        self, features: Any, labels: Optional[Sequence[int]] = None
    ) -> "NearestNeighborSearcher":
        """Store ``features`` (and optional ``labels``) as the search memory."""
        features = check_feature_matrix(features, "features")
        label_array: Optional[np.ndarray] = None
        if labels is not None:
            label_array = np.asarray(labels)
            if label_array.shape[0] != features.shape[0]:
                raise SearchError(
                    f"got {label_array.shape[0]} labels for {features.shape[0]} entries"
                )
        self._labels = label_array
        self._num_entries = features.shape[0]
        self._num_features = features.shape[1]
        self._fit(features, label_array)
        return self

    def kneighbors(self, query: Any, k: int = 1, rng: SeedLike = None) -> QueryResult:
        """Return the ``k`` nearest stored entries for one query vector."""
        self._require_fitted()
        k = check_int_in_range(k, "k", minimum=1, maximum=self._num_entries)
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        indices, scores = self._rank(query, rng=ensure_rng(rng))
        top = indices[:k]
        labels = tuple(
            None if self._labels is None else self._labels[i] for i in top
        )
        return QueryResult(indices=top, scores=scores[:k], labels=labels)

    def kneighbors_batch(
        self, queries: Any, k: int = 1, rng: SeedLike = None
    ) -> BatchQueryResult:
        """The ``k`` nearest stored entries for every row of ``queries``.

        The whole query matrix is evaluated in one vectorized pass over the
        programmed array state.  For the CAM engines the results are bitwise
        identical to a loop of :meth:`kneighbors` calls; for the software
        metrics the neighbor ranking matches while scores may differ from
        the loop by float rounding (BLAS matrix-matrix vs. matrix-vector).
        An empty batch (``(0, num_features)``) yields an empty result.
        """
        self._require_fitted()
        k = check_int_in_range(k, "k", minimum=1, maximum=self._num_entries)
        queries = self._check_query_batch(queries)
        if queries.shape[0] == 0:
            return BatchQueryResult(
                indices=np.empty((0, k), dtype=np.int64),
                scores=np.empty((0, k)),
                labels=(),
            )
        indices, scores = self._rank_batch(queries, rng=ensure_rng(rng), k=k)
        labels = tuple(
            tuple(None if self._labels is None else self._labels[i] for i in row)
            for row in indices
        )
        return BatchQueryResult(indices=indices, scores=scores, labels=labels)

    def kneighbors_arrays(
        self, queries: Any, k: int = 1, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank a (possibly coalesced) query batch into raw top-k arrays.

        The per-query demultiplexing entry point of the serving layer: the
        ranking is identical to :meth:`kneighbors_batch` — row ``i`` is
        bitwise identical to the single-query call for the deterministic
        engines, because every batched kernel evaluates query rows
        independently — but the result is the plain ``(indices, scores)``
        pair of ``(num_queries, k)`` arrays, skipping the per-query
        label-tuple construction so a scheduler can slice rows straight back
        to the awaiting clients (see :func:`labels_for` for on-demand
        labels).
        """
        self._require_fitted()
        k = check_int_in_range(k, "k", minimum=1, maximum=self._num_entries)
        queries = self._check_query_batch(queries)
        if queries.shape[0] == 0:
            return np.empty((0, k), dtype=np.int64), np.empty((0, k))
        return self._rank_batch(queries, rng=ensure_rng(rng), k=k)

    def labels_for(self, indices: Any) -> tuple:
        """Stored labels for global row indices (``None`` when unlabeled).

        Serving demultiplexers call this per delivered query instead of
        paying :meth:`kneighbors_batch`'s eager label construction for the
        whole coalesced batch.
        """
        if self._labels is None:
            return tuple(None for _ in indices)
        return tuple(self._labels[int(i)] for i in indices)

    def submit_serving(
        self, queries: Any, k: int = 1, rng: SeedLike = None
    ) -> Callable[..., Tuple[np.ndarray, np.ndarray]]:
        """Dispatch one serving batch, returning a ``collect(timeout=None)``.

        ``collect()`` yields the ``(indices, scores)`` arrays of
        :meth:`kneighbors_arrays`; its optional ``timeout`` is vacuous here
        (the result is already computed) but part of the serving contract —
        schedulers pass their requests' remaining deadline budget through
        it.  The default implementation computes eagerly and hands back a
        completed collector; searchers whose executor can keep several
        batches in flight (the sharded ``"processes"`` executor dispatching
        through the shared-memory ring) override this so the micro-batching
        scheduler can overlap the next batch's dispatch with the previous
        batch's worker-side compute.
        """
        result = self.kneighbors_arrays(queries, k=k, rng=rng)
        return lambda timeout=None: result

    def nearest(self, query: Any, rng: SeedLike = None) -> int:
        """Index of the nearest stored entry."""
        return int(self.kneighbors(query, k=1, rng=rng).indices[0])

    def predict(self, queries: Any, rng: SeedLike = None) -> np.ndarray:
        """Label of the nearest neighbor for every row of ``queries``."""
        return self.predict_batch(queries, rng=rng)

    def predict_batch(self, queries: Any, rng: SeedLike = None) -> np.ndarray:
        """Label of the nearest neighbor for every row of ``queries``.

        The batch is evaluated in one vectorized search over the programmed
        array state.
        """
        self._require_fitted()
        if self._labels is None:
            raise SearchError("cannot predict labels: the searcher was fitted without labels")
        queries = self._check_query_batch(queries)
        if queries.shape[0] == 0:
            return self._labels[:0].copy()
        result = self.kneighbors_batch(queries, k=1, rng=rng)
        predictions: np.ndarray = self._labels[result.indices[:, 0]]
        return predictions

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SearchError("searcher must be fitted before searching")

    def _check_query_batch(self, queries: Any) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        if queries.ndim != 2:
            raise SearchError(f"queries must be two-dimensional, got shape {queries.shape}")
        if queries.shape[1] != self._num_features:
            raise SearchError(
                f"queries have {queries.shape[1]} features, expected {self._num_features}"
            )
        if queries.size and not np.all(np.isfinite(queries)):
            raise SearchError("queries must contain only finite values")
        return queries

    # ------------------------------------------------------------------
    # Hooks implemented by the concrete engines
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        """Engine-specific storage of the fitted data."""

    @abc.abstractmethod
    def _rank(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices_sorted_best_first, scores_sorted_best_first)``."""

    def _rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batch counterpart of :meth:`_rank`: top-``k`` ``(num_queries, k)`` arrays.

        The default implementation loops over :meth:`_rank` so custom
        subclasses keep working; the built-in engines override it with a
        fully vectorized pass.
        """
        ranked = [self._rank(query, rng=rng) for query in queries]
        indices = np.stack([indices[:k] for indices, _ in ranked])
        scores = np.stack([scores[:k] for _, scores in ranked])
        return indices, scores


class SoftwareSearcher(NearestNeighborSearcher):
    """Floating-point brute-force NN search (the GPU baseline of Sec. IV-A).

    Parameters
    ----------
    metric:
        ``"cosine"``, ``"euclidean"``, ``"manhattan"`` or ``"linf"``.
    """

    def __init__(self, metric: str = "cosine") -> None:
        super().__init__()
        self.metric = metric
        self._distance = get_batch_metric(metric)
        self._distance_matrix = get_matrix_metric(metric)
        self._features: Optional[np.ndarray] = None

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        self._features = features.astype(np.float32)  # FP32, as in the paper

    def _require_features(self) -> np.ndarray:
        if self._features is None:
            raise SearchError("searcher must be fitted before searching")
        return self._features

    def _rank(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        features = self._require_features()
        if query.shape[0] != features.shape[1]:
            raise SearchError(
                f"query has {query.shape[0]} features, expected {features.shape[1]}"
            )
        distances = np.asarray(
            self._distance(features, query.astype(np.float32)), dtype=np.float64
        )
        order = np.argsort(distances, kind="stable")
        return order, distances[order]

    def _rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        distances = np.asarray(
            self._distance_matrix(self._require_features(), queries.astype(np.float32)),
            dtype=np.float64,
        )
        indices = _stable_smallest_k(distances, k)
        return indices, np.take_along_axis(distances, indices, axis=1)


class MCAMSearcher(NearestNeighborSearcher):
    """NN search on the FeFET MCAM with the proposed distance function.

    The real-valued features are quantized to the cell precision with a
    uniform quantizer calibrated on the stored data; the quantized entries
    are written to an :class:`~repro.circuits.mcam_array.MCAMArray`, and each
    query is a single in-memory search.  The array's conductance state is
    programmed once per :meth:`fit` and reused across queries; batched
    queries are evaluated in one vectorized pass over it.

    Parameters
    ----------
    bits:
        MCAM cell precision (2 or 3 in the paper).
    lut:
        Optional conductance look-up table (e.g. a varied or measured one);
        defaults to the nominal table for ``bits``.
    variation:
        Optional device variation model; when given, the array models each
        physical cell individually.
    sense_amplifier:
        Optional non-ideal sensing model.
    seed:
        Randomness for programming variation / sensing noise.
    max_rows:
        Optional physical row count of the array; stores larger than this
        raise a :class:`~repro.exceptions.CapacityError` (shard across
        arrays with :class:`~repro.core.sharding.ShardedSearcher` instead).
    program_seed:
        Optional integer enabling **row-keyed** device-variation programming:
        every fit routes through the array's delta-reprogramming path with
        this base seed, so a row's physical profile depends only on the seed,
        the row index and the stored states — not on how many fits preceded
        it.  Refits then re-sample only the rows that changed, and results
        are independent of episode execution order (the property the
        process-parallel experiment runtime relies on).  Ignored when no
        ``variation`` model is attached (LUT-mode programming is
        deterministic already).
    kernel:
        Batched-conductance kernel override forwarded to the array
        (``"fused"``, ``"blocked"`` or ``"dense"``); the default
        ``None``/``"auto"`` lets the shape-adaptive autotuner of
        :mod:`repro.circuits.autotune` pick per workload shape.  Kernel
        choice never changes a result bit.
    """

    def __init__(
        self,
        bits: int = 3,
        lut: Optional[ConductanceLUT] = None,
        variation: Optional[VariationModel] = None,
        sense_amplifier: Any = None,
        seed: SeedLike = None,
        max_rows: Optional[int] = None,
        program_seed: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.bits = check_bits(bits)
        self.lut = lut
        self.variation = variation
        self.sense_amplifier = sense_amplifier
        self.max_rows = max_rows
        self.program_seed = None if program_seed is None else int(program_seed)
        self.kernel = kernel
        self._rng = ensure_rng(seed)
        self.quantizer = UniformQuantizer(bits=self.bits)
        self._calibrated = False
        self._array: Optional[MCAMArray] = None

    def _calibrate(self, features: np.ndarray) -> None:
        # Calibrating on the full store (rather than this engine's slice of
        # it) is what makes shards quantize identically to one big array.
        self.quantizer.fit(features)
        self._calibrated = True

    def adopt_calibration(self, source: "NearestNeighborSearcher") -> bool:
        if (
            isinstance(source, MCAMSearcher)
            and source._calibrated
            and source.bits == self.bits
        ):
            # The quantizer is read-only during search, so sharing the fitted
            # instance across shard threads is safe.
            self.quantizer = source.quantizer
            self._calibrated = True
            return True
        return False

    def calibration_token(self) -> Any:
        if not self._calibrated or not self.quantizer.is_fitted:
            return None
        low, high = self.quantizer.ranges
        return (low.tobytes(), high.tobytes())

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        if not self._calibrated:
            self.quantizer.fit(features)
        states = self.quantizer.quantize(features)
        array = self._array
        if array is None or array.num_cells != features.shape[1]:
            reuse = False
            array = MCAMArray(
                num_cells=features.shape[1],
                bits=self.bits,
                lut=self.lut,
                variation=self.variation,
                sense_amplifier=self.sense_amplifier,
                max_rows=self.max_rows,
                kernel=self.kernel,
            )
            self._array = array
        else:
            reuse = True
        label_list = None if labels is None else list(labels)
        if self.variation is None and reuse:
            # LUT-mode refit on the same geometry: delta-reprogram the
            # existing array — unchanged rows keep their cached search
            # profiles, bitwise identical to an erase + rewrite.
            array.reprogram(states, labels=label_list)
        elif self.variation is not None and self.program_seed is not None:
            # Row-keyed device programming: a delta refit samples variation
            # only for the rows whose stored states changed, and equals a
            # from-scratch program of the same contents under the same seed.
            array.reprogram(states, labels=label_list, rng=self.program_seed)
        else:
            if reuse:
                array.clear()
            array.write(states, labels=label_list, rng=self._rng)

    def _require_array(self) -> MCAMArray:
        if self._array is None:
            raise SearchError("searcher must be fitted before searching")
        return self._array

    def _rank(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        query_states = self.quantizer.quantize(query.reshape(1, -1))[0]
        result = self._require_array().search(query_states, rng=rng)
        order = result.sensing.ranking
        return order, result.row_conductances_s[order]

    def _rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        array = self._require_array()
        query_states = self.quantizer.quantize(queries)
        conductances = array.row_conductances_batch(query_states)
        amplifier = array.sense_amplifier
        if type(amplifier) is IdealWinnerTakeAll:
            # Ideal sensing ranks by conductance with stable tie-breaking,
            # which the top-k selector reproduces without a full sort.
            indices = _stable_smallest_k(conductances, k)
        else:
            indices = sense_all(amplifier, conductances, rng=rng).rankings[:, :k]
        return indices, np.take_along_axis(conductances, indices, axis=1)

    @property
    def array(self) -> MCAMArray:
        """The underlying MCAM array (available after :meth:`fit`)."""
        self._require_fitted()
        return self._require_array()


class TCAMLSHSearcher(NearestNeighborSearcher):
    """The TCAM+LSH baseline: Hamming distance over LSH signatures.

    Query batches are encoded to signatures in one projection and searched
    against the programmed TCAM in one vectorized Hamming pass.

    Parameters
    ----------
    num_bits:
        Signature length in bits.  For the iso-word-length comparison of the
        paper this equals the number of MCAM cells (e.g. 64); the original
        TCAM work used 512.
    seed:
        Randomness for the LSH hyperplanes.
    max_rows:
        Optional physical row count of the TCAM; stores larger than this
        raise a :class:`~repro.exceptions.CapacityError`.
    kernel:
        Batched Hamming kernel override forwarded to the TCAM (``"matmul"``
        or ``"mask"``); ``None``/``"auto"`` picks per workload shape through
        the autotuner.  Kernel choice never changes a result.
    """

    def __init__(
        self,
        num_bits: int,
        seed: SeedLike = None,
        max_rows: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.num_bits = check_int_in_range(num_bits, "num_bits", minimum=1)
        self.max_rows = max_rows
        self.kernel = kernel
        self._rng = ensure_rng(seed)
        self.encoder = RandomHyperplaneLSH(num_bits=self.num_bits, seed=self._rng)
        self._calibrated = False
        self._tcam: Optional[TCAMArray] = None

    def _calibrate(self, features: np.ndarray) -> None:
        # Fitting the encoder on the full store freezes its centering mean,
        # so every shard produces the same signatures as one unsharded TCAM.
        self.encoder.fit(features)
        self._calibrated = True

    def adopt_calibration(self, source: "NearestNeighborSearcher") -> bool:
        if (
            isinstance(source, TCAMLSHSearcher)
            and source._calibrated
            and source.num_bits == self.num_bits
        ):
            # The encoder is read-only during search, so sharing the fitted
            # instance across shard threads is safe.
            self.encoder = source.encoder
            self._calibrated = True
            return True
        return False

    def calibration_token(self) -> Any:
        if not self._calibrated:
            return None
        return self.encoder.calibration_token()

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        if not self._calibrated:
            self.encoder.fit(features)
        signatures = self.encoder.encode(features)
        label_list = None if labels is None else list(labels)
        if self._tcam is not None and self._tcam.num_cells == self.num_bits:
            # Refit: delta-reprogram the programmed TCAM; unchanged signature
            # rows keep their cached Hamming kernel slices.
            self._tcam.reprogram(signatures, labels=label_list)
        else:
            self._tcam = TCAMArray(
                num_cells=self.num_bits, max_rows=self.max_rows, kernel=self.kernel
            )
            self._tcam.write(signatures, labels=label_list)

    def _require_tcam(self) -> TCAMArray:
        if self._tcam is None:
            raise SearchError("searcher must be fitted before searching")
        return self._tcam

    def _rank(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        signature = self.encoder.encode(query.reshape(1, -1))[0]
        result = self._require_tcam().search(signature, rng=rng)
        order = result.sensing.ranking
        return order, result.hamming_distances[order].astype(np.float64)

    def _rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        tcam = self._require_tcam()
        signatures = self.encoder.encode(queries)
        distances = tcam.hamming_distances_batch(signatures)
        amplifier = tcam.sense_amplifier
        if type(amplifier) is IdealWinnerTakeAll:
            # Row conductance is strictly increasing in Hamming distance, so
            # ranking the integer distances reproduces ideal ML sensing.
            indices = _stable_smallest_k(distances, k)
        else:
            conductances = tcam._conductances_from_distances(distances)
            indices = sense_all(amplifier, conductances, rng=rng).rankings[:, :k]
        scores = np.take_along_axis(distances, indices, axis=1).astype(np.float64)
        return indices, scores

    @property
    def tcam(self) -> TCAMArray:
        """The underlying TCAM array (available after :meth:`fit`)."""
        self._require_fitted()
        return self._require_tcam()


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
#: Factory signature: ``factory(num_features, bits=..., lut=..., variation=...,
#: lsh_bits=..., seed=...) -> NearestNeighborSearcher``.  Factories receive
#: every keyword :func:`make_searcher` accepts and use the ones they need.
BackendFactory = Callable[..., NearestNeighborSearcher]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: Optional[BackendFactory] = None) -> Any:
    """Register a searcher factory under ``name`` (usable as a decorator).

    Parameters
    ----------
    name:
        Backend name (matched case-insensitively by :func:`get_backend`).
    factory:
        Callable ``factory(num_features, **config)`` returning a fresh
        :class:`NearestNeighborSearcher`.  When omitted, the function
        returns a decorator.

    Raises
    ------
    SearchError
        If ``name`` is already registered.
    """

    def _register(fn: BackendFactory) -> BackendFactory:
        key = name.lower()
        if key in _BACKENDS:
            raise SearchError(f"search backend {name!r} is already registered")
        _BACKENDS[key] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def get_backend(name: str) -> BackendFactory:
    """Look up a registered backend factory by name.

    Besides the registered names, the compound form ``"sharded(<backend>)"``
    (e.g. ``"sharded(mcam-3bit)"``) resolves to a factory that partitions the
    store across multiple fixed-capacity arrays of the named backend and
    merges per-shard results into exact global top-k — see
    :class:`~repro.core.sharding.ShardedSearcher`.  The factory honours the
    ``shards``, ``max_rows_per_array``, ``executor`` and ``num_workers``
    keywords of :func:`make_searcher`.

    Raises
    ------
    SearchError
        If ``name`` is not a registered backend.
    """
    key = name.lower().strip()
    if key.startswith("sharded(") and key.endswith(")"):
        inner = key[len("sharded("):-1].strip()
        return _sharded_backend_factory(get_backend(inner))
    try:
        return _BACKENDS[key]
    except KeyError:
        raise SearchError(
            f"unknown searcher {name!r}; available backends: "
            f"{', '.join(available_backends())} (any of them also as 'sharded(<name>)')"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of all registered search backends, sorted."""
    return tuple(sorted(_BACKENDS))


@register_backend("cosine")
def _make_cosine(num_features: int, **config: Any) -> SoftwareSearcher:
    return SoftwareSearcher(metric="cosine")


@register_backend("euclidean")
def _make_euclidean(num_features: int, **config: Any) -> SoftwareSearcher:
    return SoftwareSearcher(metric="euclidean")


@register_backend("manhattan")
def _make_manhattan(num_features: int, **config: Any) -> SoftwareSearcher:
    return SoftwareSearcher(metric="manhattan")


@register_backend("linf")
def _make_linf(num_features: int, **config: Any) -> SoftwareSearcher:
    return SoftwareSearcher(metric="linf")


@register_backend("mcam")
def _make_mcam(
    num_features: int,
    bits: int = 3,
    lut: Optional[ConductanceLUT] = None,
    variation: Optional[VariationModel] = None,
    seed: SeedLike = None,
    max_rows_per_array: Optional[int] = None,
    program_seed: Optional[int] = None,
    kernel: Optional[str] = None,
    **config: Any,
) -> MCAMSearcher:
    return MCAMSearcher(
        bits=bits,
        lut=lut,
        variation=variation,
        seed=seed,
        max_rows=max_rows_per_array,
        program_seed=program_seed,
        kernel=kernel,
    )


@register_backend("mcam-3bit")
def _make_mcam_3bit(num_features: int, **config: Any) -> MCAMSearcher:
    return _make_mcam(num_features, **{**config, "bits": 3})


@register_backend("mcam-2bit")
def _make_mcam_2bit(num_features: int, **config: Any) -> MCAMSearcher:
    return _make_mcam(num_features, **{**config, "bits": 2})


def _make_tcam_lsh(
    num_features: int,
    lsh_bits: Optional[int] = None,
    seed: SeedLike = None,
    max_rows_per_array: Optional[int] = None,
    kernel: Optional[str] = None,
    **config: Any,
) -> TCAMLSHSearcher:
    signature_bits = lsh_bits if lsh_bits is not None else num_features
    return TCAMLSHSearcher(
        num_bits=signature_bits, seed=seed, max_rows=max_rows_per_array, kernel=kernel
    )


register_backend("tcam-lsh", _make_tcam_lsh)
register_backend("tcam+lsh", _make_tcam_lsh)
register_backend("tcam", _make_tcam_lsh)


def _sharded_backend_factory(inner_factory: BackendFactory) -> BackendFactory:
    """Wrap a backend factory so it builds a :class:`ShardedSearcher`.

    The returned factory consumes the sharding keywords (``shards``,
    ``max_rows_per_array``, ``executor``, ``num_workers``) and forwards
    everything else — including ``max_rows_per_array``, which bounds each
    shard's physical array — to ``inner_factory``, one call per shard.

    Seeding: shard 0 receives the caller's seed (concretized when ``None``)
    so its data-dependent preprocessing reproduces the unsharded engine
    bitwise; later shards receive seeds derived per shard index, so
    per-array randomness such as device-variation sampling is independent
    across physical arrays — as it would be in real silicon.  Shared
    data-independent state (e.g. LSH hyperplanes) still comes from shard 0
    through the calibration-adoption path.
    """
    from .sharding import ShardedSearcher  # deferred: sharding imports this module

    def factory(num_features: int, **config: Any) -> NearestNeighborSearcher:
        shards = config.pop("shards", None)
        executor = config.pop("executor", "serial")
        num_workers = config.pop("num_workers", None)
        appendable = config.pop("appendable", False)
        max_rows_per_array = config.get("max_rows_per_array")
        base_seed = config.get("seed")
        if not isinstance(base_seed, (int, np.integer)):
            # None, Generator or SeedSequence: concretize to one integer so
            # per-shard seeds can be derived deterministically from it.
            base_seed = int(ensure_rng(base_seed).integers(2**31 - 1))
        base_seed = int(base_seed)

        def make_shard(shard_index: int) -> NearestNeighborSearcher:
            shard_config = dict(config)
            if shard_index == 0:
                shard_config["seed"] = base_seed
            else:
                shard_config["seed"] = int(
                    np.random.default_rng([base_seed, shard_index]).integers(2**31 - 1)
                )
            return inner_factory(num_features, **shard_config)

        make_shard.shard_aware = True  # type: ignore[attr-defined]
        return ShardedSearcher(
            make_shard,
            num_shards=shards,
            max_rows_per_array=max_rows_per_array,
            executor=executor,
            num_workers=num_workers,
            appendable=appendable,
        )

    factory._is_sharded_factory = True  # type: ignore[attr-defined]
    return factory


def make_searcher(
    name: str,
    num_features: int,
    bits: int = 3,
    lut: Optional[ConductanceLUT] = None,
    variation: Optional[VariationModel] = None,
    lsh_bits: Optional[int] = None,
    seed: SeedLike = None,
    shards: Optional[int] = None,
    max_rows_per_array: Optional[int] = None,
    executor: str = "serial",
    num_workers: Optional[int] = None,
    program_seed: Optional[int] = None,
    appendable: bool = False,
    kernel: Optional[str] = None,
) -> NearestNeighborSearcher:
    """Factory for the engines compared in the paper's figures.

    ``name`` is resolved through the backend registry; the built-in backends
    are ``"cosine"``, ``"euclidean"``, ``"manhattan"``, ``"linf"``,
    ``"mcam"`` (uses ``bits``), ``"mcam-3bit"``, ``"mcam-2bit"`` and
    ``"tcam-lsh"``.  ``num_features`` sets the iso-word-length LSH signature
    size when ``lsh_bits`` is not given.  Additional backends registered via
    :func:`register_backend` are resolved the same way.

    Sharded multi-array execution is requested either through the compound
    name ``"sharded(<backend>)"`` or by passing ``shards=`` (a fixed shard
    count) or ``max_rows_per_array=`` (fixed-geometry tiles, the shard count
    following from the store size).  ``executor`` picks the per-shard
    execution strategy (``"serial"``, ``"threads"`` or ``"processes"``) and
    ``num_workers`` bounds the worker pool.  Sharded results are bitwise
    identical to the unsharded backend for the deterministic (ideal-sensing)
    engines.

    ``appendable=True`` builds a sharded searcher that retains its fitted
    store so :meth:`~repro.core.sharding.ShardedSearcher.append` can grow it
    live: new rows route to the least-full shard, tiles grow through the
    delta-reprogramming path, and the served results stay bitwise identical
    to a from-scratch refit of the combined store.

    ``kernel`` overrides the engine's batched-search kernel (the MCAM's
    ``"fused"``/``"blocked"``/``"dense"`` conductance kernels, the TCAM's
    ``"matmul"``/``"mask"`` Hamming kernels); the default lets the
    shape-adaptive autotuner pick per workload shape.  Kernel choice never
    changes a result, only its speed; values are validated by the engine
    they reach.
    """
    factory = get_backend(name)
    if (shards is not None or max_rows_per_array is not None) and not getattr(
        factory, "_is_sharded_factory", False
    ):
        factory = _sharded_backend_factory(factory)
    if not getattr(factory, "_is_sharded_factory", False) and (
        executor != "serial" or num_workers is not None or appendable
    ):
        raise SearchError(
            "executor/num_workers/appendable apply only to sharded execution; pass "
            "shards= or max_rows_per_array=, or use a 'sharded(<backend>)' name"
        )
    return factory(
        num_features,
        bits=bits,
        lut=lut,
        variation=variation,
        lsh_bits=lsh_bits,
        seed=seed,
        shards=shards,
        max_rows_per_array=max_rows_per_array,
        executor=executor,
        num_workers=num_workers,
        program_seed=program_seed,
        appendable=appendable,
        kernel=kernel,
    )

"""Nearest-neighbor search engines: the three implementations of Sec. IV-A.

The paper evaluates three NN-search implementations on identical real-valued
features:

1. **Software (GPU)** — floating-point cosine or Euclidean distance over the
   raw features (:class:`SoftwareSearcher`),
2. **TCAM+LSH** — random-hyperplane LSH signatures stored in a TCAM searched
   by minimum Hamming distance (:class:`TCAMLSHSearcher`),
3. **FeFET MCAM** — features quantized to the cell precision, stored in an
   MCAM and searched in a single step with the proposed conductance distance
   function (:class:`MCAMSearcher`).

All engines implement the same :class:`NearestNeighborSearcher` interface
(`fit`, `kneighbors`, `predict`), so the accuracy harness and the examples
can swap them freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import SearchError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_bits, check_feature_matrix, check_int_in_range
from ..circuits.conductance_lut import ConductanceLUT
from ..circuits.mcam_array import MCAMArray
from ..circuits.tcam import TCAMArray
from ..devices.variation import VariationModel
from ..distance.metrics import get_batch_metric
from ..encoding.features import MinMaxScaler
from ..encoding.lsh import RandomHyperplaneLSH
from .quantization import UniformQuantizer


@dataclass(frozen=True)
class QueryResult:
    """Result of a k-nearest-neighbor query.

    Attributes
    ----------
    indices:
        Indices of the ``k`` nearest stored entries, closest first.
    scores:
        The engine's internal score for each returned index (conductance,
        Hamming distance or metric distance); smaller is closer.
    labels:
        Labels of the returned entries (``None`` entries when unlabeled).
    """

    indices: np.ndarray
    scores: np.ndarray
    labels: tuple


class NearestNeighborSearcher(abc.ABC):
    """Common interface of all NN-search engines."""

    def __init__(self) -> None:
        self._labels: Optional[np.ndarray] = None
        self._num_entries = 0

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of stored data points."""
        return self._num_entries

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._num_entries > 0

    def fit(self, features, labels: Optional[Sequence[int]] = None) -> "NearestNeighborSearcher":
        """Store ``features`` (and optional ``labels``) as the search memory."""
        features = check_feature_matrix(features, "features")
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != features.shape[0]:
                raise SearchError(
                    f"got {labels.shape[0]} labels for {features.shape[0]} entries"
                )
        self._labels = labels
        self._num_entries = features.shape[0]
        self._fit(features, labels)
        return self

    def kneighbors(self, query, k: int = 1, rng: SeedLike = None) -> QueryResult:
        """Return the ``k`` nearest stored entries for one query vector."""
        self._require_fitted()
        k = check_int_in_range(k, "k", minimum=1, maximum=self._num_entries)
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        indices, scores = self._rank(query, rng=ensure_rng(rng))
        top = indices[:k]
        labels = tuple(
            None if self._labels is None else self._labels[i] for i in top
        )
        return QueryResult(indices=top, scores=scores[:k], labels=labels)

    def nearest(self, query, rng: SeedLike = None) -> int:
        """Index of the nearest stored entry."""
        return int(self.kneighbors(query, k=1, rng=rng).indices[0])

    def predict(self, queries, rng: SeedLike = None) -> np.ndarray:
        """Label of the nearest neighbor for every row of ``queries``."""
        self._require_fitted()
        if self._labels is None:
            raise SearchError("cannot predict labels: the searcher was fitted without labels")
        queries = check_feature_matrix(queries, "queries")
        generator = ensure_rng(rng)
        return np.asarray(
            [self._labels[self.nearest(query, rng=generator)] for query in queries]
        )

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SearchError("searcher must be fitted before searching")

    # ------------------------------------------------------------------
    # Hooks implemented by the concrete engines
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        """Engine-specific storage of the fitted data."""

    @abc.abstractmethod
    def _rank(self, query: np.ndarray, rng: np.random.Generator):
        """Return ``(indices_sorted_best_first, scores_sorted_best_first)``."""


class SoftwareSearcher(NearestNeighborSearcher):
    """Floating-point brute-force NN search (the GPU baseline of Sec. IV-A).

    Parameters
    ----------
    metric:
        ``"cosine"``, ``"euclidean"``, ``"manhattan"`` or ``"linf"``.
    """

    def __init__(self, metric: str = "cosine") -> None:
        super().__init__()
        self.metric = metric
        self._distance = get_batch_metric(metric)
        self._features: Optional[np.ndarray] = None

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        self._features = features.astype(np.float32)  # FP32, as in the paper

    def _rank(self, query: np.ndarray, rng: np.random.Generator):
        if query.shape[0] != self._features.shape[1]:
            raise SearchError(
                f"query has {query.shape[0]} features, expected {self._features.shape[1]}"
            )
        distances = np.asarray(
            self._distance(self._features, query.astype(np.float32)), dtype=np.float64
        )
        order = np.argsort(distances, kind="stable")
        return order, distances[order]


class MCAMSearcher(NearestNeighborSearcher):
    """NN search on the FeFET MCAM with the proposed distance function.

    The real-valued features are quantized to the cell precision with a
    uniform quantizer calibrated on the stored data; the quantized entries
    are written to an :class:`~repro.circuits.mcam_array.MCAMArray`, and each
    query is a single in-memory search.

    Parameters
    ----------
    bits:
        MCAM cell precision (2 or 3 in the paper).
    lut:
        Optional conductance look-up table (e.g. a varied or measured one);
        defaults to the nominal table for ``bits``.
    variation:
        Optional device variation model; when given, the array models each
        physical cell individually.
    sense_amplifier:
        Optional non-ideal sensing model.
    seed:
        Randomness for programming variation / sensing noise.
    """

    def __init__(
        self,
        bits: int = 3,
        lut: Optional[ConductanceLUT] = None,
        variation: Optional[VariationModel] = None,
        sense_amplifier=None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.bits = check_bits(bits)
        self.lut = lut
        self.variation = variation
        self.sense_amplifier = sense_amplifier
        self._rng = ensure_rng(seed)
        self.quantizer = UniformQuantizer(bits=self.bits)
        self._array: Optional[MCAMArray] = None

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        states = self.quantizer.fit(features).quantize(features)
        self._array = MCAMArray(
            num_cells=features.shape[1],
            bits=self.bits,
            lut=self.lut,
            variation=self.variation,
            sense_amplifier=self.sense_amplifier,
        )
        label_list = None if labels is None else list(labels)
        self._array.write(states, labels=label_list, rng=self._rng)

    def _rank(self, query: np.ndarray, rng: np.random.Generator):
        query_states = self.quantizer.quantize(query.reshape(1, -1))[0]
        result = self._array.search(query_states, rng=rng)
        order = result.sensing.ranking
        return order, result.row_conductances_s[order]

    @property
    def array(self) -> MCAMArray:
        """The underlying MCAM array (available after :meth:`fit`)."""
        self._require_fitted()
        return self._array


class TCAMLSHSearcher(NearestNeighborSearcher):
    """The TCAM+LSH baseline: Hamming distance over LSH signatures.

    Parameters
    ----------
    num_bits:
        Signature length in bits.  For the iso-word-length comparison of the
        paper this equals the number of MCAM cells (e.g. 64); the original
        TCAM work used 512.
    seed:
        Randomness for the LSH hyperplanes.
    """

    def __init__(self, num_bits: int, seed: SeedLike = None) -> None:
        super().__init__()
        self.num_bits = check_int_in_range(num_bits, "num_bits", minimum=1)
        self._rng = ensure_rng(seed)
        self.encoder = RandomHyperplaneLSH(num_bits=self.num_bits, seed=self._rng)
        self._tcam: Optional[TCAMArray] = None

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        signatures = self.encoder.fit(features).encode(features)
        self._tcam = TCAMArray(num_cells=self.num_bits)
        label_list = None if labels is None else list(labels)
        self._tcam.write(signatures, labels=label_list)

    def _rank(self, query: np.ndarray, rng: np.random.Generator):
        signature = self.encoder.encode(query.reshape(1, -1))[0]
        result = self._tcam.search(signature, rng=rng)
        order = result.sensing.ranking
        return order, result.hamming_distances[order].astype(np.float64)

    @property
    def tcam(self) -> TCAMArray:
        """The underlying TCAM array (available after :meth:`fit`)."""
        self._require_fitted()
        return self._tcam


def make_searcher(
    name: str,
    num_features: int,
    bits: int = 3,
    lut: Optional[ConductanceLUT] = None,
    variation: Optional[VariationModel] = None,
    lsh_bits: Optional[int] = None,
    seed: SeedLike = None,
) -> NearestNeighborSearcher:
    """Factory for the engines compared in the paper's figures.

    ``name`` is one of ``"cosine"``, ``"euclidean"``, ``"mcam-3bit"``,
    ``"mcam-2bit"``, ``"mcam"`` (uses ``bits``) or ``"tcam-lsh"``.
    ``num_features`` sets the iso-word-length LSH signature size when
    ``lsh_bits`` is not given.
    """
    name = name.lower()
    if name in ("cosine", "euclidean", "manhattan", "linf"):
        return SoftwareSearcher(metric=name)
    if name == "mcam":
        return MCAMSearcher(bits=bits, lut=lut, variation=variation, seed=seed)
    if name == "mcam-3bit":
        return MCAMSearcher(bits=3, lut=lut, variation=variation, seed=seed)
    if name == "mcam-2bit":
        return MCAMSearcher(bits=2, lut=lut, variation=variation, seed=seed)
    if name in ("tcam-lsh", "tcam+lsh", "tcam"):
        signature_bits = lsh_bits if lsh_bits is not None else num_features
        return TCAMLSHSearcher(num_bits=signature_bits, seed=seed)
    raise SearchError(
        f"unknown searcher {name!r}; expected one of 'cosine', 'euclidean', "
        f"'manhattan', 'linf', 'mcam', 'mcam-2bit', 'mcam-3bit', 'tcam-lsh'"
    )

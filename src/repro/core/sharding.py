"""Sharded multi-array execution: exact top-k search over fixed-capacity shards.

One physical CAM array holds a bounded number of rows, so serving a store
larger than one array means partitioning the entries across N arrays and
merging per-array results.  :class:`ShardedSearcher` does exactly that at the
search-engine level: it wraps any
:class:`~repro.core.search.NearestNeighborSearcher` factory, partitions the
fitted store into contiguous shards (a fixed shard count, or fixed-geometry
tiles of ``max_rows_per_array`` rows), fits one engine per shard, and merges
per-shard top-k candidates into the exact global top-k with the same stable
tie-breaking the unsharded engines use.  For the deterministic (ideal
sensing) engines the merged results are **bitwise identical** to the wrapped
backend searching one unbounded array.

Per-shard ranking is dispatched through a pluggable executor strategy:

* ``"serial"`` — shards are ranked one after another in the calling thread,
* ``"threads"`` — shards are ranked concurrently in a thread pool.  The
  heavy per-shard work is NumPy ufunc/BLAS kernels that release the GIL, so
  threads scale on multi-core hosts without any pickling cost,
* ``"processes"`` — shards are ranked in a persistent worker-process pool
  (:class:`~repro.runtime.process_pool.ProcessShardExecutor`), sidestepping
  the GIL entirely; on hosts with POSIX shared memory the query/result
  payloads travel through a zero-copy shared-memory ring instead of pickle.

Additional strategies (e.g. an async gateway) can be plugged in through
:func:`register_shard_executor`.  Shard jobs are self-contained module-level
callables, so any executor — in-thread, pooled or cross-process — produces
bitwise-identical results.

Two serving-oriented extensions ride on the executor seam:

* executors advertising ``supports_shard_cache`` (the ``"processes"``
  strategy) receive each programmed shard **once per program epoch** —
  published through ``publish_shard`` and cached worker-resident — so
  steady-state query batches ship only query payloads, and
* :meth:`ShardedSearcher.append` grows a fitted store live (with
  ``appendable=True``): new rows route to the least-full shard, the touched
  engines refit through the arrays' delta-reprogramming path, and the
  served results stay bitwise identical to a from-scratch refit.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..circuits.tiles import partition_rows, split_rows_evenly
from ..exceptions import SearchError
from ..utils.rng import SeedLike, ensure_rng, spawn_rngs
from ..utils.validation import check_feature_matrix, check_int_in_range
from .search import NearestNeighborSearcher, _stable_smallest_k

#: Factory signature for shard engines: a fresh searcher, built either with
#: no arguments or — for factories marked ``shard_aware = True`` — with the
#: shard index as the single positional argument.
ShardFactory = Callable[..., NearestNeighborSearcher]


class SerialShardExecutor:
    """Run per-shard jobs one after another in the calling thread."""

    name = "serial"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        # Accepted for interface uniformity; serial execution has no pool.
        self.num_workers = num_workers

    def map(self, fn: Callable[..., Any], jobs: Iterable) -> list:
        """Apply ``fn`` to every job, in order."""
        return [fn(job) for job in jobs]

    def close(self) -> None:
        """Nothing to release (idempotent)."""

    def __enter__(self) -> "SerialShardExecutor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


class ThreadedShardExecutor:
    """Run per-shard jobs concurrently in a lazily created thread pool.

    Per-shard ranking is dominated by NumPy kernels that release the GIL
    (elementwise ufuncs, reductions, BLAS), so a thread pool parallelizes
    shards across cores without serializing the query batch.

    Parameters
    ----------
    num_workers:
        Thread count; defaults to the host CPU count.
    """

    name = "threads"

    #: Worker-thread name prefix; subclasses (e.g. the trial runner) override.
    _thread_name_prefix = "repro-shard"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is not None:
            num_workers = check_int_in_range(num_workers, "num_workers", minimum=1)
        self.num_workers = num_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.num_workers if self.num_workers is not None else os.cpu_count() or 1
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=self._thread_name_prefix
            )
            self._pool = pool
            # Safety net: shut the pool down at garbage collection or
            # interpreter exit when a caller forgets close().
            self._finalizer = weakref.finalize(self, pool.shutdown, wait=True)
        return self._pool

    def map(self, fn: Callable[..., Any], jobs: Iterable) -> list:
        """Apply ``fn`` to every job concurrently, preserving job order."""
        job_list = list(jobs)
        if len(job_list) <= 1:
            return [fn(job) for job in job_list]
        return list(self._ensure_pool().map(fn, job_list))

    def close(self) -> None:
        """Shut the thread pool down (idempotent; re-created on next use)."""
        finalizer, self._finalizer = self._finalizer, None
        self._pool = None
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "ThreadedShardExecutor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


#: Registry of executor strategies by name.
SHARD_EXECUTORS: Dict[str, Callable[..., object]] = {
    "serial": SerialShardExecutor,
    "threads": ThreadedShardExecutor,
}


def register_shard_executor(name: str, factory: Callable[..., object]) -> None:
    """Register an executor strategy under ``name``.

    ``factory`` is called as ``factory(num_workers=...)`` and must return an
    object with ``map(fn, jobs)`` (order-preserving) and ``close()``.  For
    cross-process executors, ``fn`` and every job are guaranteed picklable.
    """
    key = name.lower()
    if key in SHARD_EXECUTORS:
        raise SearchError(f"shard executor {name!r} is already registered")
    SHARD_EXECUTORS[key] = factory


def resolve_shard_executor(name: str) -> Callable[..., object]:
    """Look up an executor factory, loading the runtime extras on demand.

    The ``"processes"`` executor lives in :mod:`repro.runtime`, which
    registers itself on import; resolving through this helper makes the name
    available without callers having to import the runtime package first.
    """
    try:
        key = name.lower()
    except AttributeError:
        raise SearchError(f"executor must be a string, got {type(name).__name__}") from None
    if key not in SHARD_EXECUTORS:
        from .. import runtime  # noqa: F401  — registers the process executor

    try:
        return SHARD_EXECUTORS[key]
    except KeyError:
        raise SearchError(
            f"unknown shard executor {name!r}; available: "
            f"{', '.join(sorted(SHARD_EXECUTORS))}"
        ) from None


def available_shard_executors() -> Tuple[str, ...]:
    """Names of all shard executor strategies, including runtime extras."""
    from .. import runtime  # noqa: F401  — registers the process executor

    return tuple(sorted(SHARD_EXECUTORS))


def _rank_shard_job(job: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Rank one shard for one query batch (self-contained executor job).

    Module-level (rather than a closure) so process-pool executors can ship
    it to workers; the job tuple carries everything the ranking needs.  The
    index map translates shard-local row numbers to global store indices —
    an identity-offset ``arange`` after a plain fit, arbitrary global rows
    once live appends have routed entries to non-contiguous shards.
    """
    shard, index_map, shard_rng, queries, k = job
    shard_k = min(k, shard.num_entries)
    indices, scores = shard._rank_batch(queries, rng=shard_rng, k=shard_k)
    return index_map[indices.astype(np.int64, copy=False)], scores


def merge_shard_topk(
    candidate_scores: np.ndarray, candidate_indices: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard top-k candidates into exact global top-k, vectorized.

    Parameters
    ----------
    candidate_scores / candidate_indices:
        ``(num_queries, num_candidates)`` arrays pooling every shard's local
        top-k, with indices already translated to global row numbers.
    k:
        Global neighbor count to keep per query.

    Returns
    -------
    (indices, scores):
        ``(num_queries, k)`` arrays holding, per query, the ``k``
        lexicographically smallest ``(score, global_index)`` pairs — i.e.
        scores ascending with ties broken toward the lower global row index,
        exactly matching the stable ranking of an unsharded engine.

    Notes
    -----
    Within each shard, candidates arrive sorted by score; across shards they
    are merely grouped.  Re-ordering every query's candidate row by global
    index first makes the positional tie-breaking of the stable top-k
    selector coincide with global-index tie-breaking, which is what the
    unsharded stable argsort produces.
    """
    if candidate_scores.shape != candidate_indices.shape or candidate_scores.ndim != 2:
        raise SearchError(
            f"candidate scores and indices must share a 2-D shape, got "
            f"{candidate_scores.shape} and {candidate_indices.shape}"
        )
    num_candidates = candidate_scores.shape[1]
    if not 1 <= k <= num_candidates:
        raise SearchError(f"k must lie in [1, {num_candidates}], got {k}")
    by_index = np.argsort(candidate_indices, axis=1, kind="stable")
    scores = np.take_along_axis(candidate_scores, by_index, axis=1)
    indices = np.take_along_axis(candidate_indices, by_index, axis=1)
    top = _stable_smallest_k(scores, k)
    return (
        np.take_along_axis(indices, top, axis=1),
        np.take_along_axis(scores, top, axis=1),
    )


class ShardedSearcher(NearestNeighborSearcher):
    """Exact nearest-neighbor search over multiple fixed-capacity shards.

    Wraps any registered backend: :meth:`fit` partitions the store into
    contiguous shards, builds one engine per shard from ``searcher_factory``
    (calibrating each on the *full* store so data-dependent preprocessing
    matches the unsharded engine), and queries fan out to every shard whose
    local top-k candidates are merged into the exact global top-k.

    Parameters
    ----------
    searcher_factory:
        Callable returning a fresh
        :class:`~repro.core.search.NearestNeighborSearcher`.  It is called
        with no arguments (identically configured engines for every shard)
        unless it carries a truthy ``shard_aware`` attribute, in which case
        it receives the shard index — letting it seed per-array randomness
        (e.g. device variation) independently per shard while shard 0
        reproduces the unsharded engine.
        :func:`~repro.core.search.make_searcher` arranges exactly that
        automatically.
    num_shards:
        Fixed shard count; entries are split as evenly as possible and shard
        counts exceeding the store size collapse to one entry per shard.
        Defaults to 2 when neither ``num_shards`` nor ``max_rows_per_array``
        is given.
    max_rows_per_array:
        Fixed tile capacity; the shard count follows from the store size
        (``ceil(num_entries / max_rows_per_array)``).  Mutually exclusive
        with ``num_shards``.
    executor:
        Per-shard execution strategy: ``"serial"``, ``"threads"`` or
        ``"processes"`` (or any name added via
        :func:`register_shard_executor`).  Alternatively an already
        constructed executor *instance* (anything exposing ``map`` and
        ``close``), which the searcher then **shares** rather than owns:
        several searchers can serve from one long-running worker pool, and
        :meth:`close` evicts this searcher's worker-cached shards without
        shutting the shared pool down.
    num_workers:
        Worker bound for pooled executors; defaults to the host CPU count.
        Applies only when ``executor`` is given by name — a shared instance
        is configured by whoever built it.
    appendable:
        When True the searcher retains its fitted store so :meth:`append`
        can grow it live: new rows route to the least-full shard (opening a
        fresh fixed-geometry tile only when every existing one is full) and
        each touched shard refits through the engines' delta-reprogramming
        path.  Served results stay bitwise identical to a from-scratch refit
        of the combined store for the deterministic engines.
    """

    #: Monotonic source of searcher identities used to key worker-resident
    #: shard caches; combined with the parent PID so ids never collide.
    _instance_ids = itertools.count()

    def __init__(
        self,
        searcher_factory: ShardFactory,
        num_shards: Optional[int] = None,
        max_rows_per_array: Optional[int] = None,
        executor: Any = "serial",
        num_workers: Optional[int] = None,
        appendable: bool = False,
    ) -> None:
        super().__init__()
        if not callable(searcher_factory):
            raise SearchError("searcher_factory must be a zero-argument callable")
        if num_shards is not None and max_rows_per_array is not None:
            raise SearchError(
                "pass either num_shards or max_rows_per_array, not both; the shard "
                "count follows from the tile capacity when max_rows_per_array is given"
            )
        if num_shards is not None:
            num_shards = check_int_in_range(num_shards, "num_shards", minimum=1)
        if max_rows_per_array is not None:
            max_rows_per_array = check_int_in_range(
                max_rows_per_array, "max_rows_per_array", minimum=1
            )
        if num_shards is None and max_rows_per_array is None:
            num_shards = 2
        self.searcher_factory = searcher_factory
        self._factory_takes_index = bool(getattr(searcher_factory, "shard_aware", False))
        self.requested_shards = num_shards
        self.max_rows_per_array = max_rows_per_array
        self.appendable = bool(appendable)
        self._executor: Any
        if isinstance(executor, str):
            executor_factory = resolve_shard_executor(executor)
            self.executor_name = executor.lower()
            self._executor = executor_factory(num_workers=num_workers)
            self._owns_executor = True
        else:
            # A shared executor instance: several searchers serve from one
            # long-running pool; close() must not shut it down.
            if num_workers is not None:
                raise SearchError(
                    "num_workers applies only when the executor is given by "
                    "name; configure the shared executor instance directly"
                )
            if not callable(getattr(executor, "map", None)) or not callable(
                getattr(executor, "close", None)
            ):
                raise SearchError(
                    "executor must be a registered strategy name or an object "
                    "with map(fn, jobs) and close()"
                )
            self.executor_name = str(getattr(executor, "name", type(executor).__name__))
            self._executor = executor
            self._owns_executor = False
        self._shards: List[NearestNeighborSearcher] = []
        #: Per-shard global row indices (``index_map[local] -> global``).
        self._index_maps: List[np.ndarray] = []
        #: Per-shard program epochs: bumped every time a shard's programmed
        #: contents change, never reused, so worker-resident caches can tell
        #: stale state from current state.
        self._shard_epochs: List[int] = []
        self._epoch_counter = 0
        #: Epoch/path bookkeeping of shards published to a caching executor.
        self._published_epochs: Dict[int, int] = {}
        self._published_paths: Dict[int, str] = {}
        self._searcher_id = f"{os.getpid()}-{next(self._instance_ids)}"
        #: Full fitted store, retained only for appendable searchers.
        self._store_features: Optional[np.ndarray] = None
        self._store_labels: Optional[np.ndarray] = None
        #: Durability wiring (see :meth:`enable_durability`): the write-ahead
        #: append journal, the sequence number of the last acknowledged
        #: append, the default storage directory, and the in-flight
        #: background journal checkpoint.
        self._journal: Optional[Any] = None
        self._append_seq = 0
        self._storage_dir: Optional[str] = None
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._checkpoint_error: Optional[BaseException] = None
        #: Serializes state mutation (fit/append/restore/hibernate) against
        #: snapshot capture: an append lands either wholly before a snapshot
        #: — covered by its ``applied_seq`` and truncated from the journal —
        #: or wholly after it — replayed from the journal on restore — and a
        #: shard engine is never pickled mid-mutation.
        self._state_lock = threading.RLock()
        #: Optional :class:`~repro.runtime.faults.FaultInjector` fired at
        #: the storage tier's ``"journal"`` / ``"snapshot"`` sites.
        self.storage_fault_injector: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of non-empty shards after :meth:`fit` (0 before)."""
        return len(self._shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Entries stored per shard, in global row order."""
        return tuple(shard.num_entries for shard in self._shards)

    @property
    def shard_searchers(self) -> Tuple[NearestNeighborSearcher, ...]:
        """The per-shard engines (available after :meth:`fit`)."""
        return tuple(self._shards)

    def close(self) -> None:
        """Release executor resources (idempotent).

        Owned worker pools shut down (they restart lazily on the next
        search); a **shared** executor instance stays up, but an eviction
        message drops this searcher's worker-resident shards so long-running
        pools do not accumulate dead state (see
        :meth:`~repro.runtime.process_pool.ProcessShardExecutor.evict`).
        Published worker-cache entries are forgotten either way, so a
        post-close search republishes into a fresh spool.
        """
        self._published_epochs.clear()
        self._published_paths.clear()
        evict = getattr(self._executor, "evict", None)
        if evict is not None:
            # Owned pools are about to shut down, so only the in-process
            # entries need purging; shared pools get the broadcast.
            evict(self._searcher_id, broadcast=not self._owns_executor)
        if self._owns_executor:
            self._executor.close()
        thread, self._checkpoint_thread = self._checkpoint_thread, None
        if thread is not None:
            thread.join()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ShardedSearcher":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _partition(self, num_entries: int) -> Any:
        if self.max_rows_per_array is not None:
            return partition_rows(num_entries, self.max_rows_per_array)
        return split_rows_evenly(num_entries, self.requested_shards)

    def _build_shard(self, index: int) -> NearestNeighborSearcher:
        if self._factory_takes_index:
            shard = self.searcher_factory(index)
        else:
            shard = self.searcher_factory()
        if not isinstance(shard, NearestNeighborSearcher):
            raise SearchError(
                "searcher_factory must return a NearestNeighborSearcher, got "
                f"{type(shard).__name__}"
            )
        return shard

    def _next_epoch(self) -> int:
        """A fresh, never-reused program epoch for one shard."""
        self._epoch_counter += 1
        return self._epoch_counter

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        with self._state_lock:
            self._fit_locked(features, labels)

    def _fit_locked(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        spans = self._partition(features.shape[0])
        if len(self._shards) != len(spans):
            # Refits with an unchanged partition count (the episodic
            # workload) reprogram the existing shard engines in place —
            # same amortization the unsharded engines get from searcher
            # reuse — instead of rebuilding N engines per fit.
            self._shards = [self._build_shard(index) for index in range(len(spans))]
            self._shard_epochs = [0] * len(spans)
        self._index_maps = [
            np.arange(start, stop, dtype=np.int64) for start, stop in spans
        ]
        calibrated: Optional[NearestNeighborSearcher] = None
        for index, (shard, (start, stop)) in enumerate(zip(self._shards, spans)):
            # Calibrate on the FULL store so quantizers/encoders match the
            # unsharded engine bitwise; the first shard pays the full-store
            # pass and its siblings adopt the frozen state.
            if calibrated is None or not shard.adopt_calibration(calibrated):
                shard.calibrate(features)
                calibrated = shard
            shard_labels = None if labels is None else labels[start:stop]
            shard.fit(features[start:stop], shard_labels)
            self._shard_epochs[index] = self._next_epoch()
        if self.appendable:
            self._store_features = features.copy()
            self._store_labels = None if labels is None else np.asarray(labels).copy()

    # ------------------------------------------------------------------
    # Live ingestion
    # ------------------------------------------------------------------
    def _route_appended_rows(self, num_new: int, full_features: np.ndarray) -> List[int]:
        """Assign new global rows to the least-full shards, growing the geometry.

        Rows are routed one at a time to the smallest open shard (ties break
        toward the lower shard index); in fixed-geometry mode a fresh tile is
        opened — calibrated like its siblings — once every existing tile is
        full.  Returns the indices of the shards that received rows.
        """
        capacity = self.max_rows_per_array
        sizes = [index_map.shape[0] for index_map in self._index_maps]
        routed: Dict[int, List[int]] = {}
        next_global = self._num_entries
        for _ in range(num_new):
            open_shards = [
                index
                for index, size in enumerate(sizes)
                if capacity is None or size < capacity
            ]
            if open_shards:
                target = min(open_shards, key=lambda index: (sizes[index], index))
            else:
                # Every fixed-geometry tile is full: open a fresh one.
                target = len(self._shards)
                shard = self._build_shard(target)
                if not shard.adopt_calibration(self._shards[0]):
                    shard.calibrate(full_features)
                self._shards.append(shard)
                self._shard_epochs.append(0)
                self._index_maps.append(np.empty(0, dtype=np.int64))
                sizes.append(0)
            routed.setdefault(target, []).append(next_global)
            sizes[target] += 1
            next_global += 1
        # One concatenation per touched shard keeps a bulk append linear in
        # the appended row count instead of copying the growing map per row.
        for target, new_globals in routed.items():
            self._index_maps[target] = np.concatenate(
                [self._index_maps[target], np.asarray(new_globals, dtype=np.int64)]
            )
        return list(routed)

    def append(self, features: Any, labels: Any = None) -> "ShardedSearcher":
        """Grow the fitted store in place (live ingestion).

        New rows receive the next global indices, route to the least-full
        shard and program through the engines' delta-reprogramming path;
        shards that received no rows are refit only when the grown store
        shifts the frozen calibration state (detected via
        :meth:`~repro.core.search.NearestNeighborSearcher.calibration_token`),
        in which case delta reprogramming still skips every row whose stored
        representation did not change.  For the deterministic engines the
        results served afterwards are **bitwise identical** to a
        from-scratch refit of the combined store.

        Appending to an empty (never fitted) searcher is exactly a
        :meth:`fit`.  Requires ``appendable=True``.
        """
        if not self.appendable:
            raise SearchError(
                "this searcher does not retain its store for live appends; "
                "construct it with appendable=True "
                "(e.g. make_searcher(..., appendable=True))"
            )
        if not self._shards:
            return self.fit(features, labels)
        features = check_feature_matrix(features, "features")
        if features.shape[1] != self._num_features:
            raise SearchError(
                f"appended rows have {features.shape[1]} features, "
                f"expected {self._num_features}"
            )
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != features.shape[0]:
                raise SearchError(
                    f"got {labels.shape[0]} labels for {features.shape[0]} entries"
                )
        if (self._store_labels is None) != (labels is None):
            raise SearchError(
                "appended rows must be labeled exactly like the fitted store"
            )
        with self._state_lock:
            if self._journal is not None:
                # Acknowledge-before-route: the rows are fsync'd to the journal
                # before any shard mutates, so once append() returns the caller
                # holds a durable acknowledgement that survives kill -9.
                self._journal.record(self._append_seq + 1, features, labels)
            # The sequence advances even without a journal: snapshots stamp
            # it as applied_seq, which lets the executor's disk-restore rung
            # tell a snapshot that still matches this searcher from one
            # taken before later acknowledged appends.
            self._append_seq += 1
            self._apply_append(features, labels)
        self._note_append_seq()
        return self

    def _apply_append(
        self, features: np.ndarray, labels: Optional[np.ndarray]
    ) -> "ShardedSearcher":
        """Route validated rows into the shards (also the journal replay path)."""
        store_features = self._store_features
        store_labels = self._store_labels
        if store_features is None:
            raise SearchError("appendable searcher lost its retained store")
        full_features = np.concatenate([store_features, features], axis=0)
        full_labels = (
            None
            if labels is None or store_labels is None
            else np.concatenate([store_labels, labels], axis=0)
        )
        # Re-freeze data-dependent preprocessing on the grown store.  The
        # token comparison below detects whether that moved the frozen state
        # (e.g. a quantizer range extended by an out-of-range row): if it
        # did, every shard's stored representation must be re-derived.
        token_before = self._shards[0].calibration_token()
        calibrated: Optional[NearestNeighborSearcher] = None
        for shard in self._shards:
            if calibrated is None or not shard.adopt_calibration(calibrated):
                shard.calibrate(full_features)
                calibrated = shard
        token_after = self._shards[0].calibration_token()
        # An engine that implements data-dependent calibration but reports no
        # token (a third-party backend without calibration_token) gives us no
        # way to prove untouched shards are still valid — refit everything
        # rather than risk serving stale representations.
        calibration_opaque = token_after is None and (
            type(self._shards[0])._calibrate is not NearestNeighborSearcher._calibrate
        )
        recalibrated = token_after != token_before or calibration_opaque
        received = self._route_appended_rows(features.shape[0], full_features)
        self._store_features = full_features
        self._store_labels = full_labels
        self._labels = full_labels
        self._num_entries = full_features.shape[0]
        for index, shard in enumerate(self._shards):
            if not recalibrated and index not in received:
                continue
            rows = self._index_maps[index]
            shard_labels = None if full_labels is None else full_labels[rows]
            shard.fit(full_features[rows], shard_labels)
            self._shard_epochs[index] = self._next_epoch()
        return self

    # ------------------------------------------------------------------
    # Durability (see repro.storage)
    # ------------------------------------------------------------------
    def enable_durability(self, directory: Any, fsync: bool = True) -> "ShardedSearcher":
        """Attach a write-ahead append journal and default snapshot directory.

        Once enabled, every acknowledged :meth:`append` is recorded
        (framed, checksummed, fsync'd) in ``<directory>/journal.wal``
        *before* any row routes to a shard, and :meth:`snapshot` /
        :meth:`restore` default to ``directory``.  Call :meth:`snapshot`
        after the initial :meth:`fit` to establish the recovery base; the
        journal covers appends, not fits.  ``fsync=False`` trades the
        zero-acknowledged-loss guarantee for append latency.
        """
        from ..storage.journal import AppendJournal
        from ..storage.snapshot import JOURNAL_NAME

        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        self._storage_dir = directory
        if self._journal is not None:
            self._journal.close()
        journal = AppendJournal(os.path.join(directory, JOURNAL_NAME), fsync=fsync)
        journal.fault_injector = self.storage_fault_injector
        self._journal = journal
        # Safety net: release the journal's file handle at garbage
        # collection when a caller drops the searcher without close().
        weakref.finalize(self, journal.close)
        return self

    def _require_storage_dir(self, directory: Optional[Any]) -> str:
        if directory is not None:
            return os.fspath(directory)
        if self._storage_dir is None:
            raise SearchError(
                "no storage directory: pass one explicitly or call "
                "enable_durability(directory) first"
            )
        return self._storage_dir

    def snapshot(self, directory: Optional[Any] = None) -> str:
        """Persist the fitted state as a crash-safe snapshot generation.

        Returns the generation directory.  Concurrent :meth:`append` calls
        serialize against the capture — each lands either wholly before it
        (covered by the recorded ``applied_seq``) or wholly after it
        (replayed from the journal on restore), so the generation is one
        consistent cut of ``(applied_seq, shard states)``.  When the
        snapshot lands in the durability directory, the journal is
        checkpointed in the background — records the snapshot now covers
        are truncated away — and the executor (if it supports warm
        restart) is pointed at the snapshot as this searcher's restore
        source.
        """
        from ..storage.snapshot import write_snapshot

        directory = self._require_storage_dir(directory)
        self._require_fitted()
        with self._state_lock:
            applied_seq = self._append_seq
            path = write_snapshot(
                self,
                directory,
                applied_seq=applied_seq,
                fault_injector=self.storage_fault_injector,
            )
        if self._journal is not None and directory == self._storage_dir:
            self._checkpoint_journal(applied_seq)
        self._attach_restore_source(directory, applied_seq)
        return path

    def restore(self, directory: Optional[Any] = None) -> "ShardedSearcher":
        """Rebuild the fitted state from the last snapshot plus the journal.

        Loads and fully verifies the snapshot, installs its shards under
        **fresh** program epochs (worker-resident caches keyed on old
        epochs can never alias restored state), then replays every journal
        record newer than the snapshot's ``applied_seq`` through the exact
        append path — so the restored searcher is bitwise identical to one
        that never crashed, with zero acknowledged-append loss.  A torn
        journal tail is truncated; corruption raises
        :class:`~repro.exceptions.SnapshotIntegrityError`.
        """
        from ..storage.journal import read_journal
        from ..storage.snapshot import JOURNAL_NAME, load_snapshot

        directory = self._require_storage_dir(directory)
        # A background checkpoint still rewriting journal.wal must finish
        # before the replay reads (and possibly repair-truncates) that file.
        thread, self._checkpoint_thread = self._checkpoint_thread, None
        if thread is not None:
            thread.join()
        state = load_snapshot(directory)
        manifest = state.manifest
        if self.appendable and state.features is None:
            raise SearchError(
                f"snapshot at {directory} was taken from a non-appendable "
                f"searcher and retains no store; it cannot restore into an "
                f"appendable one"
            )
        with self._state_lock:
            self._evict_published()
            # Never reuse an epoch the live bookkeeping may already have
            # issued: advance past both the manifest's counter and our own,
            # then stamp every restored shard with a fresh epoch.
            self._epoch_counter = max(self._epoch_counter, int(manifest["epoch_counter"]))
            self._shards = [engine for engine, _ in state.shards]
            self._index_maps = [index_map for _, index_map in state.shards]
            self._shard_epochs = [self._next_epoch() for _ in self._shards]
            self._num_entries = int(manifest["num_entries"])
            self._num_features = int(manifest["num_features"])
            self._labels = state.labels
            if self.appendable:
                self._store_features = state.features
                self._store_labels = state.labels
            self._append_seq = int(manifest["applied_seq"])
            journal_path = os.path.join(directory, JOURNAL_NAME)
            journal = self._journal
            if journal is not None and os.path.abspath(journal.path) == os.path.abspath(
                journal_path
            ):
                # Read/repair through the live journal's own lock so the
                # truncation cannot interleave with a concurrent record()
                # or checkpoint() rewriting the same file.
                records, _ = journal.replay(repair=True)
            else:
                records, _ = read_journal(journal_path, repair=True)
            for record in records:
                if record.seq <= self._append_seq:
                    continue  # idempotent replay: the snapshot already covers it
                if not self.appendable:
                    raise SearchError(
                        f"journal at {journal_path} holds appends but this "
                        f"searcher is not appendable; construct it with "
                        f"appendable=True to replay them"
                    )
                self._apply_append(record.features, record.labels)
                self._append_seq = record.seq
            applied_seq = self._append_seq
        self._attach_restore_source(directory, applied_seq)
        return self

    def hibernate(self, directory: Optional[Any] = None) -> str:
        """Snapshot to disk, then release the in-memory fitted state.

        The eviction half of cold tenancy: after hibernating, the searcher
        holds no shard engines, no retained store and no worker-resident
        spools — only the configuration needed to :meth:`restore` — so its
        memory footprint collapses to the object shell.  Searching before
        a restore raises :class:`~repro.exceptions.SearchError`.
        """
        with self._state_lock:
            path = self.snapshot(directory)
            self._evict_published()
            self._shards = []
            self._index_maps = []
            self._shard_epochs = []
            self._store_features = None
            self._store_labels = None
            self._labels = None
        return path

    def _evict_published(self) -> None:
        """Drop published worker-cache state so stale spools cannot serve."""
        if self._published_paths:
            evict = getattr(self._executor, "evict", None)
            if evict is not None:
                evict(self._searcher_id, broadcast=True)
        self._published_epochs.clear()
        self._published_paths.clear()

    @property
    def checkpoint_error(self) -> Optional[BaseException]:
        """Failure of the last background journal checkpoint (None: healthy).

        A recorded failure is raised out of the next :meth:`snapshot` call
        instead of vanishing with its daemon thread.
        """
        return self._checkpoint_error

    def _checkpoint_journal(self, applied_seq: int) -> None:
        """Truncate journaled appends the snapshot covers, off-thread.

        The previous checkpoint (if any) is joined first; a failure it
        recorded — e.g. :class:`~repro.exceptions.SnapshotIntegrityError`
        from a corrupt frame — re-raises here rather than disappearing to
        the daemon thread's stderr.
        """
        journal = self._journal
        if journal is None:
            return
        prior, self._checkpoint_thread = self._checkpoint_thread, None
        if prior is not None:
            prior.join()
        error, self._checkpoint_error = self._checkpoint_error, None
        if error is not None:
            raise error

        def run() -> None:
            try:
                journal.checkpoint(applied_seq)
            except BaseException as exc:  # surfaced on the next snapshot
                self._checkpoint_error = exc

        thread = threading.Thread(
            target=run, name="repro-journal-checkpoint", daemon=True
        )
        self._checkpoint_thread = thread
        thread.start()

    def _attach_restore_source(self, directory: str, applied_seq: int) -> None:
        """Register ``directory`` as this searcher's disk restore source.

        ``applied_seq`` tells the executor which append the snapshot covers
        up to, so its disk-restore rung can refuse a generation that later
        acknowledged appends have made stale.
        """
        attach = getattr(self._executor, "attach_restore_source", None)
        if attach is not None:
            try:
                attach(self._searcher_id, directory, applied_seq=applied_seq)
            except TypeError:
                # Third-party executors may predate the applied_seq
                # parameter; staleness then goes untracked on their rung.
                attach(self._searcher_id, directory)

    def _note_append_seq(self) -> None:
        """Tell the executor how far past any snapshot this searcher is.

        The executor's disk-restore rung must never republish a shard from
        a snapshot generation older than the last acknowledged append —
        this hook is how it learns the current sequence.
        """
        note = getattr(self._executor, "note_append_seq", None)
        if note is not None:
            note(self._searcher_id, self._append_seq)

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _rank(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, scores = self._rank_batch(query.reshape(1, -1), rng=rng, k=self._num_entries)
        return indices[0], scores[0]

    def _cached_shard_jobs(self, shard_rngs: Any, queries: np.ndarray, k: int) -> list:
        """Jobs for a worker-caching executor: payloads ship once per epoch.

        Shards whose program epoch moved since the last publication are
        re-published through the executor (one spool write per epoch, not
        per batch); every job then carries only the cache key —
        ``(searcher_id, shard_index, epoch)`` — the published payload's
        location, the query batch and the shard's candidate count
        ``shard_k = min(k, shard rows)``, so warm workers serve from their
        resident copies and a zero-copy transport can pre-size the result
        blocks.
        """
        jobs = []
        for index, shard_rng in enumerate(shard_rngs):
            epoch = self._shard_epochs[index]
            if self._published_epochs.get(index) != epoch:
                self._published_paths[index] = self._executor.publish_shard(
                    self._searcher_id,
                    index,
                    (self._shards[index], self._index_maps[index]),
                    epoch=epoch,
                )
                self._published_epochs[index] = epoch
            jobs.append(
                (
                    self._searcher_id,
                    index,
                    epoch,
                    self._published_paths[index],
                    shard_rng,
                    queries,
                    min(k, self._shards[index].num_entries),
                )
            )
        return jobs

    def _merge_shard_results(self, results: Any, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Pool per-shard candidates and merge them into exact global top-k.

        ``np.concatenate`` copies, so shared-memory result views are
        consumed here — the merged arrays never alias a ring segment.
        """
        candidate_indices = np.concatenate([indices for indices, _ in results], axis=1)
        candidate_scores = np.concatenate([scores for _, scores in results], axis=1)
        return merge_shard_topk(candidate_scores, candidate_indices, k)

    def _rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._submit_rank_batch(queries, rng, k)()

    def _submit_rank_batch(
        self, queries: np.ndarray, rng: np.random.Generator, k: int
    ) -> Callable[..., Tuple[np.ndarray, np.ndarray]]:
        """Dispatch one batch, returning a ``collect(timeout=None)`` callable.

        Executors exposing ``submit_cached`` (the ``"processes"`` strategy)
        keep the dispatched batch **in flight**: workers rank it while the
        caller is free to demultiplex the previous batch or write the next
        one, and ``collect()`` blocks only until this batch's shards are
        merged — or, with a ``timeout`` (seconds), until the executor's
        supervised collect resolves, retries, or fails the batch with a
        typed serving error.  Every other path computes eagerly and hands
        back a completed collector (whose ``timeout`` is vacuous — the
        result already exists), so :meth:`_rank_batch` behaves identically
        either way.
        """
        if not self._shards:
            raise SearchError("sharded searcher must be fitted before searching")
        if len(self._shards) == 1:
            indices, scores = self._shards[0]._rank_batch(queries, rng=rng, k=k)
            result = (
                self._index_maps[0][indices.astype(np.int64, copy=False)],
                scores,
            )
            return lambda timeout=None: result
        # Independent per-shard streams: stochastic engines stay deterministic
        # under any executor because no generator is shared across workers.
        shard_rngs = spawn_rngs(rng, len(self._shards))
        if getattr(self._executor, "supports_shard_cache", False):
            jobs = self._cached_shard_jobs(shard_rngs, queries, k)
            submit = getattr(self._executor, "submit_cached", None)
            if submit is not None:
                pending = submit(jobs)

                def collect(timeout: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
                    try:
                        results = pending(timeout=timeout)
                    except TypeError:
                        # Third-party executors may expose a zero-argument
                        # collect; deadlines then bound only admission.
                        results = pending()
                    return self._merge_shard_results(results, k)

                return collect
            results = self._executor.map_cached(jobs)
        else:
            jobs = [
                (shard, index_map, shard_rng, queries, k)
                for shard, index_map, shard_rng in zip(
                    self._shards, self._index_maps, shard_rngs
                )
            ]
            results = self._executor.map(_rank_shard_job, jobs)
        merged = self._merge_shard_results(results, k)
        return lambda timeout=None: merged

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    @property
    def serving_depth(self) -> Optional[int]:
        """Batches the executor can keep in flight at once (None: unbounded).

        Mirrors the executor's ``dispatch_depth`` — for the shared-memory
        transport that is the ring depth, since a ring slot may only be
        rewritten after the batch occupying it has been collected.  The
        micro-batching scheduler caps its ``max_in_flight`` at this value.
        """
        return getattr(self._executor, "dispatch_depth", None)

    @property
    def serving_channel(self) -> Any:
        """The dispatch channel this searcher's serving batches travel on.

        Searchers sharing one executor *instance* (several tenants on one
        long-running worker pool) share its shared-memory ring, so their
        in-flight batches compete for the same ring slots.  A multi-lane
        scheduler uses this identity to recognize lanes that share a
        channel: the total in-flight bound and the FIFO collect order are
        per channel, not per searcher.
        """
        return self._executor

    def submit_serving(
        self, queries: Any, k: int = 1, rng: SeedLike = None
    ) -> Callable[..., Tuple[np.ndarray, np.ndarray]]:
        """Dispatch one coalesced batch and keep it in flight until collected.

        The sharded serving entry point: returns a ``collect(timeout=None)``
        whose result is the ``(indices, scores)`` pair of
        :meth:`kneighbors_arrays`.  On the ``"processes"`` executor the
        batch travels through the shared-memory ring and stays in flight —
        worker processes rank it while the caller demultiplexes earlier
        batches — bounded by :attr:`serving_depth`; a ``timeout`` passed to
        the collect bounds the batch in wall-clock seconds, failing it with
        a typed serving error (after the executor's supervised heal/retry)
        instead of blocking forever.  Collect order must follow submit
        order (FIFO), which is what keeps ring-slot reuse safe; the
        micro-batching scheduler enforces exactly that.
        """
        self._require_fitted()
        k = check_int_in_range(k, "k", minimum=1, maximum=self._num_entries)
        queries = self._check_query_batch(queries)
        if queries.shape[0] == 0:
            empty = (np.empty((0, k), dtype=np.int64), np.empty((0, k)))
            return lambda timeout=None: empty
        return self._submit_rank_batch(queries, ensure_rng(rng), k)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedSearcher(shards={self.num_shards or self.requested_shards}, "
            f"max_rows_per_array={self.max_rows_per_array}, executor={self.executor_name!r})"
        )

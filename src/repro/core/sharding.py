"""Sharded multi-array execution: exact top-k search over fixed-capacity shards.

One physical CAM array holds a bounded number of rows, so serving a store
larger than one array means partitioning the entries across N arrays and
merging per-array results.  :class:`ShardedSearcher` does exactly that at the
search-engine level: it wraps any
:class:`~repro.core.search.NearestNeighborSearcher` factory, partitions the
fitted store into contiguous shards (a fixed shard count, or fixed-geometry
tiles of ``max_rows_per_array`` rows), fits one engine per shard, and merges
per-shard top-k candidates into the exact global top-k with the same stable
tie-breaking the unsharded engines use.  For the deterministic (ideal
sensing) engines the merged results are **bitwise identical** to the wrapped
backend searching one unbounded array.

Per-shard ranking is dispatched through a pluggable executor strategy:

* ``"serial"`` — shards are ranked one after another in the calling thread,
* ``"threads"`` — shards are ranked concurrently in a thread pool.  The
  heavy per-shard work is NumPy ufunc/BLAS kernels that release the GIL, so
  threads scale on multi-core hosts without any pickling cost,
* ``"processes"`` — shards are ranked in a persistent worker-process pool
  (:class:`~repro.runtime.process_pool.ProcessShardExecutor`), sidestepping
  the GIL entirely at the cost of pickling the per-shard jobs.

Additional strategies (e.g. an async gateway) can be plugged in through
:func:`register_shard_executor`.  Shard jobs are self-contained module-level
callables, so any executor — in-thread, pooled or cross-process — produces
bitwise-identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..circuits.tiles import partition_rows, split_rows_evenly
from ..exceptions import SearchError
from ..utils.rng import spawn_rngs
from ..utils.validation import check_int_in_range
from .search import NearestNeighborSearcher, _stable_smallest_k

#: Factory signature for shard engines: a fresh searcher, built either with
#: no arguments or — for factories marked ``shard_aware = True`` — with the
#: shard index as the single positional argument.
ShardFactory = Callable[..., NearestNeighborSearcher]


class SerialShardExecutor:
    """Run per-shard jobs one after another in the calling thread."""

    name = "serial"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        # Accepted for interface uniformity; serial execution has no pool.
        self.num_workers = num_workers

    def map(self, fn, jobs) -> list:
        """Apply ``fn`` to every job, in order."""
        return [fn(job) for job in jobs]

    def close(self) -> None:
        """Nothing to release."""


class ThreadedShardExecutor:
    """Run per-shard jobs concurrently in a lazily created thread pool.

    Per-shard ranking is dominated by NumPy kernels that release the GIL
    (elementwise ufuncs, reductions, BLAS), so a thread pool parallelizes
    shards across cores without serializing the query batch.

    Parameters
    ----------
    num_workers:
        Thread count; defaults to the host CPU count.
    """

    name = "threads"

    #: Worker-thread name prefix; subclasses (e.g. the trial runner) override.
    _thread_name_prefix = "repro-shard"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is not None:
            num_workers = check_int_in_range(num_workers, "num_workers", minimum=1)
        self.num_workers = num_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.num_workers if self.num_workers is not None else os.cpu_count() or 1
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=self._thread_name_prefix
            )
        return self._pool

    def map(self, fn, jobs) -> list:
        """Apply ``fn`` to every job concurrently, preserving job order."""
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [fn(job) for job in jobs]
        return list(self._ensure_pool().map(fn, jobs))

    def close(self) -> None:
        """Shut the thread pool down (it is re-created on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Registry of executor strategies by name.
SHARD_EXECUTORS: Dict[str, Callable[..., object]] = {
    "serial": SerialShardExecutor,
    "threads": ThreadedShardExecutor,
}


def register_shard_executor(name: str, factory: Callable[..., object]) -> None:
    """Register an executor strategy under ``name``.

    ``factory`` is called as ``factory(num_workers=...)`` and must return an
    object with ``map(fn, jobs)`` (order-preserving) and ``close()``.  For
    cross-process executors, ``fn`` and every job are guaranteed picklable.
    """
    key = name.lower()
    if key in SHARD_EXECUTORS:
        raise SearchError(f"shard executor {name!r} is already registered")
    SHARD_EXECUTORS[key] = factory


def resolve_shard_executor(name: str) -> Callable[..., object]:
    """Look up an executor factory, loading the runtime extras on demand.

    The ``"processes"`` executor lives in :mod:`repro.runtime`, which
    registers itself on import; resolving through this helper makes the name
    available without callers having to import the runtime package first.
    """
    try:
        key = name.lower()
    except AttributeError:
        raise SearchError(f"executor must be a string, got {type(name).__name__}") from None
    if key not in SHARD_EXECUTORS:
        from .. import runtime  # noqa: F401  — registers the process executor

    try:
        return SHARD_EXECUTORS[key]
    except KeyError:
        raise SearchError(
            f"unknown shard executor {name!r}; available: "
            f"{', '.join(sorted(SHARD_EXECUTORS))}"
        ) from None


def available_shard_executors() -> Tuple[str, ...]:
    """Names of all shard executor strategies, including runtime extras."""
    from .. import runtime  # noqa: F401  — registers the process executor

    return tuple(sorted(SHARD_EXECUTORS))


def _rank_shard_job(job) -> Tuple[np.ndarray, np.ndarray]:
    """Rank one shard for one query batch (self-contained executor job).

    Module-level (rather than a closure) so process-pool executors can ship
    it to workers; the job tuple carries everything the ranking needs.
    """
    shard, offset, shard_rng, queries, k = job
    shard_k = min(k, shard.num_entries)
    indices, scores = shard._rank_batch(queries, rng=shard_rng, k=shard_k)
    return indices.astype(np.int64, copy=False) + offset, scores


def merge_shard_topk(
    candidate_scores: np.ndarray, candidate_indices: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard top-k candidates into exact global top-k, vectorized.

    Parameters
    ----------
    candidate_scores / candidate_indices:
        ``(num_queries, num_candidates)`` arrays pooling every shard's local
        top-k, with indices already translated to global row numbers.
    k:
        Global neighbor count to keep per query.

    Returns
    -------
    (indices, scores):
        ``(num_queries, k)`` arrays holding, per query, the ``k``
        lexicographically smallest ``(score, global_index)`` pairs — i.e.
        scores ascending with ties broken toward the lower global row index,
        exactly matching the stable ranking of an unsharded engine.

    Notes
    -----
    Within each shard, candidates arrive sorted by score; across shards they
    are merely grouped.  Re-ordering every query's candidate row by global
    index first makes the positional tie-breaking of the stable top-k
    selector coincide with global-index tie-breaking, which is what the
    unsharded stable argsort produces.
    """
    if candidate_scores.shape != candidate_indices.shape or candidate_scores.ndim != 2:
        raise SearchError(
            f"candidate scores and indices must share a 2-D shape, got "
            f"{candidate_scores.shape} and {candidate_indices.shape}"
        )
    num_candidates = candidate_scores.shape[1]
    if not 1 <= k <= num_candidates:
        raise SearchError(f"k must lie in [1, {num_candidates}], got {k}")
    by_index = np.argsort(candidate_indices, axis=1, kind="stable")
    scores = np.take_along_axis(candidate_scores, by_index, axis=1)
    indices = np.take_along_axis(candidate_indices, by_index, axis=1)
    top = _stable_smallest_k(scores, k)
    return (
        np.take_along_axis(indices, top, axis=1),
        np.take_along_axis(scores, top, axis=1),
    )


class ShardedSearcher(NearestNeighborSearcher):
    """Exact nearest-neighbor search over multiple fixed-capacity shards.

    Wraps any registered backend: :meth:`fit` partitions the store into
    contiguous shards, builds one engine per shard from ``searcher_factory``
    (calibrating each on the *full* store so data-dependent preprocessing
    matches the unsharded engine), and queries fan out to every shard whose
    local top-k candidates are merged into the exact global top-k.

    Parameters
    ----------
    searcher_factory:
        Callable returning a fresh
        :class:`~repro.core.search.NearestNeighborSearcher`.  It is called
        with no arguments (identically configured engines for every shard)
        unless it carries a truthy ``shard_aware`` attribute, in which case
        it receives the shard index — letting it seed per-array randomness
        (e.g. device variation) independently per shard while shard 0
        reproduces the unsharded engine.
        :func:`~repro.core.search.make_searcher` arranges exactly that
        automatically.
    num_shards:
        Fixed shard count; entries are split as evenly as possible and shard
        counts exceeding the store size collapse to one entry per shard.
        Defaults to 2 when neither ``num_shards`` nor ``max_rows_per_array``
        is given.
    max_rows_per_array:
        Fixed tile capacity; the shard count follows from the store size
        (``ceil(num_entries / max_rows_per_array)``).  Mutually exclusive
        with ``num_shards``.
    executor:
        Per-shard execution strategy: ``"serial"``, ``"threads"`` or
        ``"processes"`` (or any name added via
        :func:`register_shard_executor`).
    num_workers:
        Worker bound for pooled executors; defaults to the host CPU count.
    """

    def __init__(
        self,
        searcher_factory: ShardFactory,
        num_shards: Optional[int] = None,
        max_rows_per_array: Optional[int] = None,
        executor: str = "serial",
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not callable(searcher_factory):
            raise SearchError("searcher_factory must be a zero-argument callable")
        if num_shards is not None and max_rows_per_array is not None:
            raise SearchError(
                "pass either num_shards or max_rows_per_array, not both; the shard "
                "count follows from the tile capacity when max_rows_per_array is given"
            )
        if num_shards is not None:
            num_shards = check_int_in_range(num_shards, "num_shards", minimum=1)
        if max_rows_per_array is not None:
            max_rows_per_array = check_int_in_range(
                max_rows_per_array, "max_rows_per_array", minimum=1
            )
        if num_shards is None and max_rows_per_array is None:
            num_shards = 2
        executor_factory = resolve_shard_executor(executor)
        self.searcher_factory = searcher_factory
        self._factory_takes_index = bool(getattr(searcher_factory, "shard_aware", False))
        self.requested_shards = num_shards
        self.max_rows_per_array = max_rows_per_array
        self.executor_name = executor.lower()
        self._executor = executor_factory(num_workers=num_workers)
        self._shards: List[NearestNeighborSearcher] = []
        self._offsets: List[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of non-empty shards after :meth:`fit` (0 before)."""
        return len(self._shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Entries stored per shard, in global row order."""
        return tuple(shard.num_entries for shard in self._shards)

    @property
    def shard_searchers(self) -> Tuple[NearestNeighborSearcher, ...]:
        """The per-shard engines (available after :meth:`fit`)."""
        return tuple(self._shards)

    def close(self) -> None:
        """Release executor resources (e.g. the thread pool)."""
        self._executor.close()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _partition(self, num_entries: int):
        if self.max_rows_per_array is not None:
            return partition_rows(num_entries, self.max_rows_per_array)
        return split_rows_evenly(num_entries, self.requested_shards)

    def _build_shard(self, index: int) -> NearestNeighborSearcher:
        if self._factory_takes_index:
            shard = self.searcher_factory(index)
        else:
            shard = self.searcher_factory()
        if not isinstance(shard, NearestNeighborSearcher):
            raise SearchError(
                "searcher_factory must return a NearestNeighborSearcher, got "
                f"{type(shard).__name__}"
            )
        return shard

    def _fit(self, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        spans = self._partition(features.shape[0])
        if len(self._shards) != len(spans):
            # Refits with an unchanged partition count (the episodic
            # workload) reprogram the existing shard engines in place —
            # same amortization the unsharded engines get from searcher
            # reuse — instead of rebuilding N engines per fit.
            self._shards = [self._build_shard(index) for index in range(len(spans))]
        self._offsets = [start for start, _ in spans]
        calibrated: Optional[NearestNeighborSearcher] = None
        for shard, (start, stop) in zip(self._shards, spans):
            # Calibrate on the FULL store so quantizers/encoders match the
            # unsharded engine bitwise; the first shard pays the full-store
            # pass and its siblings adopt the frozen state.
            if calibrated is None or not shard.adopt_calibration(calibrated):
                shard.calibrate(features)
                calibrated = shard
            shard_labels = None if labels is None else labels[start:stop]
            shard.fit(features[start:stop], shard_labels)

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _rank(self, query: np.ndarray, rng: np.random.Generator):
        indices, scores = self._rank_batch(query.reshape(1, -1), rng=rng, k=self._num_entries)
        return indices[0], scores[0]

    def _rank_batch(self, queries: np.ndarray, rng: np.random.Generator, k: int):
        if not self._shards:
            raise SearchError("sharded searcher must be fitted before searching")
        if len(self._shards) == 1:
            indices, scores = self._shards[0]._rank_batch(queries, rng=rng, k=k)
            return indices.astype(np.int64, copy=False) + self._offsets[0], scores
        # Independent per-shard streams: stochastic engines stay deterministic
        # under any executor because no generator is shared across workers.
        shard_rngs = spawn_rngs(rng, len(self._shards))
        jobs = [
            (shard, offset, shard_rng, queries, k)
            for shard, offset, shard_rng in zip(self._shards, self._offsets, shard_rngs)
        ]
        results = self._executor.map(_rank_shard_job, jobs)
        candidate_indices = np.concatenate([indices for indices, _ in results], axis=1)
        candidate_scores = np.concatenate([scores for _, scores in results], axis=1)
        return merge_shard_topk(candidate_scores, candidate_indices, k)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedSearcher(shards={self.num_shards or self.requested_shards}, "
            f"max_rows_per_array={self.max_rows_per_array}, executor={self.executor_name!r})"
        )

"""Feature quantization for MCAM storage and search.

To perform NN search with the FeFET MCAM, "the real-valued features of the
query and memory entries are quantized to the same bit precision as the
MCAM" (Sec. IV-A).  Quantized feature values map one-to-one to MCAM cell
states (for memory entries) and input states (for queries).

The quantizer here is a uniform mid-rise quantizer over a calibration range:
:meth:`UniformQuantizer.fit` learns per-feature (or global) ranges from the
data that will be stored, and :meth:`UniformQuantizer.quantize` maps values
into ``{0, ..., 2^bits - 1}``, clipping out-of-range queries to the nearest
state — exactly what applying an out-of-range voltage to a data line would
do physically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from ..exceptions import QuantizationError
from ..utils.validation import check_bits, check_feature_matrix


@dataclass
class UniformQuantizer:
    """Uniform quantizer mapping real features to ``2^bits`` integer states.

    Parameters
    ----------
    bits:
        Bit precision (2 or 3 for the paper's MCAMs).
    per_feature:
        When true (default) each feature dimension gets its own calibration
        range; otherwise a single global range is used.
    epsilon:
        Guard value used when a feature is constant in the calibration data
        (its range would otherwise be zero).
    """

    bits: int = 3
    per_feature: bool = True
    epsilon: float = 1e-12

    def __post_init__(self) -> None:
        check_bits(self.bits)
        if self.epsilon <= 0:
            raise QuantizationError(f"epsilon must be positive, got {self.epsilon}")
        self._low: Optional[np.ndarray] = None
        self._high: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of quantization levels (``2^bits``)."""
        return 2**self.bits

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._low is not None

    def fit(self, features: Any) -> "UniformQuantizer":
        """Learn the quantization range(s) from calibration ``features``.

        Returns ``self`` so calls can be chained
        (``UniformQuantizer(bits=3).fit(train)``).
        """
        features = check_feature_matrix(features, "features")
        if self.per_feature:
            low = features.min(axis=0)
            high = features.max(axis=0)
        else:
            low = np.full(features.shape[1], features.min())
            high = np.full(features.shape[1], features.max())
        width = high - low
        degenerate = width < self.epsilon
        if np.any(degenerate):
            # Give constant features a symmetric unit range so they quantize
            # to a stable middle state instead of dividing by zero.
            low = np.where(degenerate, low - 0.5, low)
            high = np.where(degenerate, high + 0.5, high)
        self._low = low.astype(np.float64)
        self._high = high.astype(np.float64)
        return self

    def _require_fitted(self) -> Tuple[np.ndarray, np.ndarray]:
        """The fitted ``(low, high)`` arrays, or a typed error when unfitted."""
        if self._low is None or self._high is None:
            raise QuantizationError("quantizer must be fitted before use")
        return self._low, self._high

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def quantize(self, features: Any) -> np.ndarray:
        """Map real-valued ``features`` to integer states in ``[0, 2^bits)``.

        Values outside the calibration range are clipped to the extreme
        states.
        """
        low, high = self._require_fitted()
        features = check_feature_matrix(features, "features")
        if features.shape[1] != low.shape[0]:
            raise QuantizationError(
                f"features have {features.shape[1]} dimensions but the quantizer "
                f"was fitted with {low.shape[0]}"
            )
        span = high - low
        normalized = (features - low) / span
        states = np.floor(normalized * self.num_states).astype(np.int64)
        clipped: np.ndarray = np.clip(states, 0, self.num_states - 1)
        return clipped

    def fit_quantize(self, features: Any) -> np.ndarray:
        """Fit on ``features`` and immediately quantize them."""
        return self.fit(features).quantize(features)

    def dequantize(self, states: Any) -> np.ndarray:
        """Map integer states back to the centers of their real-valued bins.

        This is the reconstruction used when comparing quantized data with
        software distance functions at matched precision.
        """
        low, high = self._require_fitted()
        states = np.asarray(states)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        if states.ndim != 2 or states.shape[1] != low.shape[0]:
            raise QuantizationError(
                f"states must have shape (n, {low.shape[0]}), got {states.shape}"
            )
        if states.min() < 0 or states.max() >= self.num_states:
            raise QuantizationError(
                f"states must lie in [0, {self.num_states - 1}], "
                f"got range [{states.min()}, {states.max()}]"
            )
        span = high - low
        centers = (states.astype(np.float64) + 0.5) / self.num_states
        values: np.ndarray = low + centers * span
        return values

    def quantization_error(self, features: Any) -> float:
        """RMS reconstruction error of quantizing then dequantizing ``features``."""
        features = check_feature_matrix(features, "features")
        reconstructed = self.dequantize(self.quantize(features))
        return float(np.sqrt(np.mean((features - reconstructed) ** 2)))

    @property
    def ranges(self) -> Tuple[np.ndarray, np.ndarray]:
        """The fitted ``(low, high)`` calibration vectors."""
        low, high = self._require_fitted()
        return low.copy(), high.copy()

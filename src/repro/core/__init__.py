"""Core public API: quantization, the MCAM distance function, search engines.

This package holds the paper's primary contribution in library form:

* :class:`~repro.core.quantization.UniformQuantizer` — maps real features to
  MCAM states (Sec. IV-A),
* :class:`~repro.core.distance.MCAMDistance` — the proposed conductance-based
  distance function, usable as a plain software metric,
* :class:`~repro.core.search.MCAMSearcher`,
  :class:`~repro.core.search.TCAMLSHSearcher`,
  :class:`~repro.core.search.SoftwareSearcher` — the three NN-search
  implementations compared throughout the evaluation.
"""

from .distance import (
    MCAMDistance,
    exponential_distance_profile,
    linear_distance_profile,
    profile_to_lut,
)
from .knn import KNNClassifier
from .quantization import UniformQuantizer
from .sharding import (
    SerialShardExecutor,
    ShardedSearcher,
    ThreadedShardExecutor,
    merge_shard_topk,
    register_shard_executor,
)
from .search import (
    BatchQueryResult,
    MCAMSearcher,
    NearestNeighborSearcher,
    QueryResult,
    SoftwareSearcher,
    TCAMLSHSearcher,
    available_backends,
    get_backend,
    make_searcher,
    register_backend,
    slice_topk,
)

__all__ = [
    "MCAMDistance",
    "exponential_distance_profile",
    "linear_distance_profile",
    "profile_to_lut",
    "KNNClassifier",
    "UniformQuantizer",
    "SerialShardExecutor",
    "ShardedSearcher",
    "ThreadedShardExecutor",
    "merge_shard_topk",
    "register_shard_executor",
    "BatchQueryResult",
    "MCAMSearcher",
    "NearestNeighborSearcher",
    "QueryResult",
    "SoftwareSearcher",
    "TCAMLSHSearcher",
    "available_backends",
    "get_backend",
    "make_searcher",
    "register_backend",
    "slice_topk",
]

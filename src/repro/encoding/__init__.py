"""Feature encoders: LSH signatures and feature scaling."""

from .features import MinMaxScaler, StandardScaler, l2_normalize
from .lsh import RandomHyperplaneLSH

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "l2_normalize",
    "RandomHyperplaneLSH",
]

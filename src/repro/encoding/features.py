"""Feature scaling utilities.

The NN-classification and few-shot pipelines normalize features before
storing them in a CAM or handing them to a software distance function.  The
scalers here mirror the standard preprocessing used by the paper's baselines:
min-max scaling (which pairs naturally with the uniform MCAM quantizer),
z-score standardization, and L2 normalization (which makes the Euclidean and
cosine rankings coincide, as in SimpleShot-style MANN pipelines).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import check_feature_matrix


class MinMaxScaler:
    """Scale every feature to ``[0, 1]`` based on the fitting data's range."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon
        self._low: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._low is not None

    def fit(self, features) -> "MinMaxScaler":
        """Learn per-feature minima and ranges."""
        features = check_feature_matrix(features, "features")
        low = features.min(axis=0)
        high = features.max(axis=0)
        span = np.maximum(high - low, self.epsilon)
        self._low = low
        self._span = span
        return self

    def transform(self, features) -> np.ndarray:
        """Scale ``features`` into the unit interval (clipping out-of-range values)."""
        if not self.is_fitted:
            raise ConfigurationError("scaler must be fitted before transforming")
        features = check_feature_matrix(features, "features")
        if features.shape[1] != self._low.shape[0]:
            raise ConfigurationError(
                f"features have {features.shape[1]} dimensions but the scaler "
                f"was fitted with {self._low.shape[0]}"
            )
        return np.clip((features - self._low) / self._span, 0.0, 1.0)

    def fit_transform(self, features) -> np.ndarray:
        """Fit on ``features`` and transform them."""
        return self.fit(features).transform(features)


class StandardScaler:
    """Standardize features to zero mean and unit variance."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    def fit(self, features) -> "StandardScaler":
        """Learn per-feature means and standard deviations."""
        features = check_feature_matrix(features, "features")
        self._mean = features.mean(axis=0)
        self._std = np.maximum(features.std(axis=0), self.epsilon)
        return self

    def transform(self, features) -> np.ndarray:
        """Standardize ``features`` with the fitted statistics."""
        if not self.is_fitted:
            raise ConfigurationError("scaler must be fitted before transforming")
        features = check_feature_matrix(features, "features")
        if features.shape[1] != self._mean.shape[0]:
            raise ConfigurationError(
                f"features have {features.shape[1]} dimensions but the scaler "
                f"was fitted with {self._mean.shape[0]}"
            )
        return (features - self._mean) / self._std

    def fit_transform(self, features) -> np.ndarray:
        """Fit on ``features`` and transform them."""
        return self.fit(features).transform(features)


def l2_normalize(features, epsilon: float = 1e-12) -> np.ndarray:
    """Normalize every row of ``features`` to unit L2 norm.

    Rows with (near-)zero norm are returned unchanged rather than divided by
    zero.
    """
    features = check_feature_matrix(features, "features")
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    safe = np.where(norms > epsilon, norms, 1.0)
    return features / safe

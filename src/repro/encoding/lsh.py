"""Locality-sensitive hashing (LSH) for the TCAM+LSH baseline.

The TCAM approach of the paper's reference [3] cannot evaluate a useful
distance on real-valued features directly: "all the features of the
real-valued query and memory entries are transformed using an LSH algorithm
run on a GPU to create intermediate binary signatures", and the TCAM then
measures Hamming distances between signatures (Sec. IV-A).

The classic random-hyperplane (sign-random-projection) LSH of Charikar is
used: each signature bit is the sign of the projection of the (mean-centered)
feature vector onto a random Gaussian hyperplane.  The Hamming distance
between two signatures is then an unbiased estimate of the angle between the
original vectors, i.e. LSH+Hamming *approximates the cosine distance* — which
is exactly why the paper describes TCAM+LSH as an approximation of the cosine
metric and why it loses accuracy at short signature lengths (footnote 1: the
original work used 512-bit signatures; the iso-word-length comparison here
uses signatures as long as the number of MCAM cells, e.g. 64 bits).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_feature_matrix, check_int_in_range


class RandomHyperplaneLSH:
    """Sign-random-projection LSH encoder producing binary signatures.

    Parameters
    ----------
    num_bits:
        Signature length (number of random hyperplanes).
    center:
        Whether to subtract the mean of the fitting data before projecting.
        Centering spreads the signatures when all features are positive
        (common for post-ReLU CNN embeddings and UCI data).
    seed:
        Seed or generator controlling the random hyperplanes.
    """

    def __init__(self, num_bits: int, center: bool = True, seed: SeedLike = None) -> None:
        self.num_bits = check_int_in_range(num_bits, "num_bits", minimum=1)
        self.center = bool(center)
        self._rng = ensure_rng(seed)
        self._hyperplanes: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether the encoder has drawn its hyperplanes."""
        return self._hyperplanes is not None

    def fit(self, features) -> "RandomHyperplaneLSH":
        """Fit the encoder: draw hyperplanes, compute the centering mean.

        The hyperplanes depend only on the feature dimensionality, so they
        are drawn once and reused by subsequent ``fit`` calls of the same
        width (refitting a reused encoder on new data — e.g. one searcher
        serving many few-shot episodes — keeps the hash family stable and
        only refreshes the data-dependent centering mean).
        """
        features = check_feature_matrix(features, "features")
        num_features = features.shape[1]
        if self._hyperplanes is None or self._hyperplanes.shape[0] != num_features:
            self._hyperplanes = self._rng.normal(0.0, 1.0, size=(num_features, self.num_bits))
        self._mean = features.mean(axis=0) if self.center else np.zeros(num_features)
        return self

    def calibration_token(self):
        """Hashable fingerprint of the data-dependent encoder state.

        The hyperplanes are drawn once per feature width, so the centering
        mean is the only state that shifts when the encoder is refit on a
        grown store; comparing tokens tells callers (the sharded append
        path) whether previously encoded signatures are still valid.
        """
        if self._mean is None:
            return None
        return self._mean.tobytes()

    def encode(self, features) -> np.ndarray:
        """Binary signatures (0/1 matrix of shape ``(n, num_bits)``)."""
        if not self.is_fitted:
            raise ConfigurationError("LSH encoder must be fitted before encoding")
        features = check_feature_matrix(features, "features")
        if features.shape[1] != self._hyperplanes.shape[0]:
            raise ConfigurationError(
                f"features have {features.shape[1]} dimensions but the encoder "
                f"was fitted with {self._hyperplanes.shape[0]}"
            )
        projections = (features - self._mean) @ self._hyperplanes
        return (projections >= 0.0).astype(np.int64)

    def fit_encode(self, features) -> np.ndarray:
        """Fit on ``features`` and return their signatures."""
        return self.fit(features).encode(features)

    def estimated_angle(self, signature_a, signature_b) -> float:
        """Angle (radians) between two original vectors estimated from signatures.

        The collision probability of random-hyperplane LSH is
        ``1 - theta / pi``, so ``theta ~= pi * hamming / num_bits``.
        """
        a = np.asarray(signature_a)
        b = np.asarray(signature_b)
        if a.shape != (self.num_bits,) or b.shape != (self.num_bits,):
            raise ConfigurationError(
                f"signatures must have shape ({self.num_bits},), got {a.shape} and {b.shape}"
            )
        hamming = float(np.count_nonzero(a != b))
        return np.pi * hamming / self.num_bits

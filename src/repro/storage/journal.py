"""Write-ahead append journal for :class:`~repro.core.sharding.ShardedSearcher`.

The journal is the durability half of the acknowledge-before-route
contract: an ``append()`` call is recorded here — framed, checksummed and
fsync'd — *before* any row is routed to a shard, so by the time the caller
sees the call return, the rows survive ``kill -9``.  Recovery replays
records newer than the last snapshot's ``applied_seq`` in order, which
makes a restored searcher bitwise identical to one that never crashed.

Frame layout mirrors the PR 8 spool header so one CRC idiom covers the
whole storage tier::

    b"RJNL\\x01" | crc32(payload) LE u32 | len(payload) LE u64 | payload

where ``payload`` pickles ``(seq, features, labels)``.  Two failure modes
are deliberately distinguished:

* **torn tail** — the file ends mid-frame (short header or short
  payload).  That is the expected artifact of a crash mid-write: replay
  stops at the last complete frame, and ``repair=True`` truncates the
  tear so later appends cannot land behind garbage.
* **corruption** — a *complete* frame whose CRC or sequence ordering is
  wrong.  That is silent data damage, never a crash artifact, and raises
  :class:`~repro.exceptions.SnapshotIntegrityError` rather than serving
  partial state.
"""

from __future__ import annotations

import io
import os
import pickle
import threading
import zlib
from typing import Any, List, NamedTuple, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, SnapshotIntegrityError

__all__ = ["AppendJournal", "JournalRecord", "read_journal"]

_MAGIC = b"RJNL\x01"
_HEADER_BYTES = len(_MAGIC) + 4 + 8


class JournalRecord(NamedTuple):
    """One acknowledged append: its sequence number and the appended rows."""

    seq: int
    features: np.ndarray
    labels: Optional[np.ndarray]


def _frame(record: JournalRecord) -> bytes:
    payload = pickle.dumps(tuple(record), protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _MAGIC
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
        + len(payload).to_bytes(8, "little")
        + payload
    )


def read_journal(path: str, repair: bool = False) -> Tuple[List[JournalRecord], int]:
    """Read every complete journal record at ``path``.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset
    of the last complete frame's end.  A torn tail (short header or short
    payload) ends the scan; with ``repair=True`` the file is truncated to
    ``valid_bytes`` so subsequent appends extend a clean log.  A complete
    frame that fails its CRC, carries the wrong magic, or breaks the
    strictly-increasing sequence order raises
    :class:`~repro.exceptions.SnapshotIntegrityError`.
    """
    records: List[JournalRecord] = []
    if not os.path.exists(path):
        return records, 0
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    last_seq: Optional[int] = None
    while offset < len(data):
        header = data[offset : offset + _HEADER_BYTES]
        if len(header) < _HEADER_BYTES:
            break  # torn tail: crash mid-header
        if not header.startswith(_MAGIC):
            raise SnapshotIntegrityError(
                f"journal frame at byte {offset} of {path} has bad magic"
            )
        crc = int.from_bytes(header[len(_MAGIC) : len(_MAGIC) + 4], "little")
        length = int.from_bytes(header[len(_MAGIC) + 4 :], "little")
        payload = data[offset + _HEADER_BYTES : offset + _HEADER_BYTES + length]
        if len(payload) < length:
            break  # torn tail: crash mid-payload
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise SnapshotIntegrityError(
                f"journal frame at byte {offset} of {path} failed its checksum"
            )
        seq, features, labels = pickle.loads(payload)
        if last_seq is not None and seq <= last_seq:
            raise SnapshotIntegrityError(
                f"journal at {path} is out of order: seq {seq} after {last_seq}"
            )
        last_seq = seq
        records.append(JournalRecord(int(seq), features, labels))
        offset += _HEADER_BYTES + length
    if repair and offset < len(data):
        with open(path, "r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
    return records, offset


class AppendJournal:
    """Append-only, fsync'd record log with atomic checkpoint truncation.

    Parameters
    ----------
    path:
        Journal file location; created lazily on the first :meth:`record`.
    fsync:
        Flush each record to stable storage before acknowledging.  On by
        default — turning it off trades the zero-acknowledged-loss
        guarantee for write latency and only belongs in benchmarks.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self._path = os.fspath(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle: Optional[io.BufferedWriter] = None
        self._closed = False
        #: Optional fault injector fired at the ``"journal"`` site after
        #: each durable record — chaos tests tear the tail here.
        self.fault_injector: Optional[Any] = None

    @property
    def path(self) -> str:
        return self._path

    def _open_handle(self) -> io.BufferedWriter:
        if self._closed:
            raise ConfigurationError(f"journal at {self._path} is closed")
        if self._handle is None:
            os.makedirs(os.path.dirname(os.path.abspath(self._path)), exist_ok=True)
            self._handle = open(self._path, "ab")
        return self._handle

    def record(self, seq: int, features: np.ndarray, labels: Optional[np.ndarray]) -> None:
        """Durably record one append before it is routed to shards."""
        frame = _frame(JournalRecord(int(seq), np.asarray(features), labels))
        with self._lock:
            handle = self._open_handle()
            handle.write(frame)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        injector = self.fault_injector
        if injector is not None:
            injector.fire("journal", None, path=self._path)

    def replay(self, repair: bool = False) -> Tuple[List[JournalRecord], int]:
        """Read this journal's records under its lock (see :func:`read_journal`).

        Restore paths go through here when the journal is live, so the
        read — and the ``repair=True`` tail truncation — cannot interleave
        with a concurrent :meth:`record` or a :meth:`checkpoint` replacing
        the same file.
        """
        with self._lock:
            return read_journal(self._path, repair=repair)

    def checkpoint(self, applied_seq: int) -> int:
        """Drop records a snapshot already covers; returns the count kept.

        Rewrites the journal to only the records with ``seq >
        applied_seq`` via tmp-write + ``os.replace``, so a crash during
        checkpointing leaves the previous (longer but correct) journal.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            records, valid_bytes = read_journal(self._path, repair=False)
            keep = [record for record in records if record.seq > applied_seq]
            if len(keep) == len(records) and (
                not os.path.exists(self._path)
                or os.path.getsize(self._path) == valid_bytes
            ):
                # Nothing to drop and no torn tail to repair; in particular
                # a journal that never recorded stays nonexistent.
                return len(keep)
            tmp_path = f"{self._path}.tmp"
            with open(tmp_path, "wb") as fh:
                for record in keep:
                    fh.write(_frame(record))
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp_path, self._path)
            if self._fsync:
                dir_fd = os.open(os.path.dirname(os.path.abspath(self._path)), os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            return len(keep)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "AppendJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Durable shard storage tier: snapshots, append journaling, cold tenancy.

The serving runtime keeps fitted stores in memory and ships them to
workers through transport spools; this package is what survives a process
restart.  Three pieces compose:

* :mod:`.snapshot` — crash-safe, checksummed snapshots of a fitted
  :class:`~repro.core.sharding.ShardedSearcher` (atomic generation
  directories referenced by an atomically replaced manifest),
* :mod:`.journal` — a write-ahead append journal: acknowledged
  ``append()`` calls are fsync'd before routing, and recovery replays
  them over the last snapshot so a restored searcher is bitwise identical
  to one that never crashed,
* :mod:`.tenancy` — an LRU eviction-to-disk policy
  (:class:`~repro.storage.tenancy.ColdTenantPool`) so one host serves
  more tenants than RAM holds, restoring cold tenants transparently on
  their next lease.

Every on-disk artifact is either the spool-pickle format (validated by
:func:`~repro.runtime.transport.verify_spool_entry`) or a length+CRC
framed journal record; nothing partial is ever served — corruption
surfaces as :class:`~repro.exceptions.SnapshotIntegrityError`.
"""

from .journal import AppendJournal, JournalRecord, read_journal
from .snapshot import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    SnapshotState,
    load_snapshot,
    load_snapshot_shard,
    write_snapshot,
)
from .tenancy import ColdTenantPool

__all__ = [
    "AppendJournal",
    "ColdTenantPool",
    "JOURNAL_NAME",
    "JournalRecord",
    "MANIFEST_NAME",
    "SnapshotState",
    "load_snapshot",
    "load_snapshot_shard",
    "read_journal",
    "write_snapshot",
]

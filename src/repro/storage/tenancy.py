"""Cold-tenant eviction-to-disk: more tenants per host than RAM holds.

A serving host shares one long-running
:class:`~repro.runtime.process_pool.ProcessShardExecutor` across many
tenant searchers, each with its own fitted store and worker-resident shard
cache.  :class:`ColdTenantPool` bounds how many of those stores stay
resident in memory: beyond ``capacity``, the least-recently-used idle
tenant is *hibernated* — snapshotted to its durability directory, its
spools evicted from every worker, its in-memory store released — and
transparently restored from disk the next time it is leased.  The restore
round-trips through the same checksummed snapshot path as crash recovery,
so an evicted-and-restored tenant serves bitwise-identical results.

LRU recency advances on every :meth:`lease` and — when the pool registers
itself as the executor's ``tenant_policy`` — on every dispatch the
executor sees, so tenants kept warm by direct serving traffic are not
eviction candidates.  A leased tenant is pinned: eviction skips it, and
the pool temporarily overshoots ``capacity`` rather than pulling state out
from under an active query.
"""

from __future__ import annotations

import os
import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, Tuple

from ..exceptions import ConfigurationError
from ..utils.validation import check_int_in_range

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.sharding import ShardedSearcher

__all__ = ["ColdTenantPool"]

#: Strict allowlist for tenant ids: they name a directory under the pool
#: root, so anything that could traverse out of it ('..', separators on
#: any platform, control characters) must be rejected, not just os.sep.
_TENANT_ID_PATTERN = re.compile(r"[A-Za-z0-9._-]+")


@dataclass
class _Tenant:
    searcher: "ShardedSearcher"
    directory: str
    resident: bool = True
    pins: int = field(default=0)


class ColdTenantPool:
    """LRU memory-pressure policy over tenant searchers sharing one executor.

    Parameters
    ----------
    executor:
        The shared executor every admitted searcher serves from.  If it
        exposes a ``tenant_policy`` attribute the pool registers itself
        there, so dispatches refresh LRU recency without going through
        :meth:`lease`.
    directory:
        Root of the per-tenant durability directories
        (``<directory>/<tenant_id>/``).
    capacity:
        Maximum number of tenants kept resident in memory at once.
    """

    def __init__(self, executor: Any, directory: str, capacity: int) -> None:
        self._executor = executor
        self._directory = os.fspath(directory)
        self._capacity = check_int_in_range(capacity, "capacity", minimum=1)
        self._lock = threading.RLock()
        #: LRU order: oldest (coldest) tenant first.
        self._tenants: "OrderedDict[str, _Tenant]" = OrderedDict()
        self._ids: Dict[str, str] = {}
        self._closed = False
        #: Lifetime counters, for tests and capacity tuning.
        self.evictions = 0
        self.restores = 0
        if hasattr(executor, "tenant_policy"):
            executor.tenant_policy = self

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident_tenants(self) -> Tuple[str, ...]:
        """Tenant ids currently resident, coldest first."""
        with self._lock:
            return tuple(
                tenant_id for tenant_id, tenant in self._tenants.items() if tenant.resident
            )

    def tenant_directory(self, tenant_id: str) -> str:
        return os.path.join(self._directory, tenant_id)

    def admit(self, tenant_id: str, searcher: "ShardedSearcher") -> str:
        """Register a fitted tenant searcher; may evict a colder tenant.

        Returns the tenant's durability directory.  The searcher must
        share this pool's executor — eviction broadcasts spool evictions
        through it — and must be fitted, since hibernation snapshots it.
        """
        if (
            not tenant_id
            or tenant_id in (".", "..")
            or _TENANT_ID_PATTERN.fullmatch(tenant_id) is None
        ):
            raise ConfigurationError(
                f"tenant_id must be a plain name matching [A-Za-z0-9._-]+ "
                f"(and not '.' or '..'), got {tenant_id!r}"
            )
        with self._lock:
            if self._closed:
                raise ConfigurationError("cold-tenant pool is closed")
            if tenant_id in self._tenants:
                raise ConfigurationError(f"tenant {tenant_id!r} is already admitted")
            directory = self.tenant_directory(tenant_id)
            self._tenants[tenant_id] = _Tenant(searcher=searcher, directory=directory)
            self._ids[searcher._searcher_id] = tenant_id
            self._evict_over_capacity()
            return directory

    @contextmanager
    def lease(self, tenant_id: str) -> Iterator["ShardedSearcher"]:
        """Check a tenant out for use, restoring it from disk if evicted.

        The tenant is pinned (never evicted) for the duration of the
        ``with`` block and becomes the most-recently-used tenant.
        """
        with self._lock:
            tenant = self._checkout(tenant_id)
            tenant.pins += 1
            self._tenants.move_to_end(tenant_id)
            self._evict_over_capacity()
        try:
            yield tenant.searcher
        finally:
            with self._lock:
                tenant.pins -= 1
                if self._closed:
                    # The pool closed mid-lease: close() skipped this
                    # tenant rather than pulling state out from under the
                    # lease, so its deferred hibernation lands here.
                    if tenant.pins == 0 and tenant.resident:
                        self._hibernate(tenant)
                else:
                    self._evict_over_capacity()

    def kneighbors_batch(self, tenant_id: str, queries: Any, k: int = 1, rng: Any = None) -> Any:
        """Serve one query batch for a tenant under a lease."""
        with self.lease(tenant_id) as searcher:
            return searcher.kneighbors_batch(queries, k=k, rng=rng)

    def touch(self, searcher_id: str) -> None:
        """Refresh LRU recency for a dispatching searcher (executor hook).

        Called by the executor right before each cached dispatch; unknown
        ids (non-tenant searchers on the same executor) are ignored.
        """
        with self._lock:
            tenant_id = self._ids.get(searcher_id)
            if tenant_id is not None and tenant_id in self._tenants:
                self._tenants.move_to_end(tenant_id)

    def _checkout(self, tenant_id: str) -> _Tenant:
        if self._closed:
            raise ConfigurationError("cold-tenant pool is closed")
        try:
            tenant = self._tenants[tenant_id]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}") from None
        if not tenant.resident:
            tenant.searcher.restore(tenant.directory)
            tenant.resident = True
            self.restores += 1
        return tenant

    def _hibernate(self, tenant: _Tenant) -> None:
        tenant.searcher.hibernate(tenant.directory)
        tenant.resident = False
        self.evictions += 1

    def _evict_over_capacity(self) -> None:
        resident = [
            (tenant_id, tenant) for tenant_id, tenant in self._tenants.items() if tenant.resident
        ]
        excess = len(resident) - self._capacity
        for tenant_id, tenant in resident:
            if excess <= 0:
                break
            if tenant.pins > 0:
                # Never pull state out from under a live lease; capacity
                # overshoots until the lease returns.
                continue
            self._hibernate(tenant)
            excess -= 1

    def close(self) -> None:
        """Hibernate every unpinned resident tenant, detach from the executor.

        Tenants held by a live lease are skipped — the same pinning rule
        :meth:`_evict_over_capacity` honors, so hibernation never pulls
        shard state out from under an active query; each skipped tenant
        hibernates when its lease returns instead.
        """
        with self._lock:
            if self._closed:
                return
            for tenant in self._tenants.values():
                if tenant.resident and tenant.pins == 0:
                    self._hibernate(tenant)
            self._closed = True
        if getattr(self._executor, "tenant_policy", None) is self:
            self._executor.tenant_policy = None

    def __enter__(self) -> "ColdTenantPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Crash-safe shard snapshots: checksummed, atomic, verifiable.

A snapshot persists everything a fitted
:class:`~repro.core.sharding.ShardedSearcher` needs to serve again after a
process restart: every per-shard engine (with its programmed arrays and
frozen calibration state), every index map, the retained store of
appendable searchers, the label vector, and a ``manifest.json`` recording
per-file sizes and CRC-32s plus the searcher's append sequence number and
epoch counter.

Layout under the snapshot directory::

    manifest.json       <- atomic (tmp + os.replace + fsync), written LAST
    journal.wal         <- the append journal (see :mod:`.journal`)
    snap-<id>/          <- one immutable snapshot generation
        shard-<i>.pkl   <- spool-pickle format (RSPL magic + CRC header)
        store.pkl       <- retained features/labels payload

Each data file reuses the PR 8 spool-header format
(:func:`~repro.runtime.transport.write_spool_pickle`), so
:func:`~repro.runtime.transport.verify_spool_entry` validates snapshot
shards exactly like transport spools — one CRC idiom across the tier.
The generation directory is staged under a ``.tmp`` name and renamed into
place before the manifest flips to it, so a crash at any point leaves
either the previous complete snapshot or none; readers trust only what
the manifest references and every referenced byte is checksummed.
"""

from __future__ import annotations

import os
import shutil
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..circuits.mcam_array import preserve_search_caches
from ..exceptions import SnapshotIntegrityError, SpoolIntegrityError
from ..runtime.transport import load_pickle_spool_bytes, write_spool_pickle
from ..utils.io import load_json, save_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.search import NearestNeighborSearcher
    from ..core.sharding import ShardedSearcher

__all__ = [
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "SnapshotState",
    "load_snapshot",
    "load_snapshot_shard",
    "write_snapshot",
]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.wal"
_SNAPSHOT_FORMAT = 1
_STORE_FILE = "store.pkl"


@dataclass
class SnapshotState:
    """A fully verified snapshot, loaded and ready to install."""

    manifest: Dict[str, Any]
    shards: List[Tuple["NearestNeighborSearcher", np.ndarray]]
    features: Optional[np.ndarray]
    labels: Optional[np.ndarray]


def _file_crc32(path: str) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(chunk, crc)


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _next_snapshot_id(directory: str) -> int:
    """One past the newest generation visible on disk or in the manifest."""
    newest = -1
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        try:
            manifest = load_json(manifest_path)
            newest = int(manifest.get("snapshot_id", -1))
        except (OSError, ValueError):
            pass  # unreadable manifest: fall back to the directory scan
    for name in os.listdir(directory):
        stem = name[:-4] if name.endswith(".tmp") else name
        if stem.startswith("snap-"):
            try:
                newest = max(newest, int(stem[len("snap-") :]))
            except ValueError:
                continue
    return newest + 1


def write_snapshot(
    searcher: "ShardedSearcher",
    directory: str,
    applied_seq: int,
    fault_injector: Optional[Any] = None,
) -> str:
    """Persist ``searcher``'s fitted state as a new snapshot generation.

    The generation is staged in a ``.tmp`` sibling, fsync'd, renamed into
    place, and only then referenced by an atomically replaced manifest —
    the point of no return.  Older generations are deleted afterwards.
    Returns the generation directory path.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    snapshot_id = _next_snapshot_id(directory)
    generation = f"snap-{snapshot_id}"
    staging = os.path.join(directory, f"{generation}.tmp")
    shutil.rmtree(staging, ignore_errors=True)
    os.makedirs(staging)

    shard_entries: List[Dict[str, Any]] = []
    shard_states = zip(searcher._shards, searcher._index_maps, searcher._shard_epochs)
    # Snapshots keep the engines' derived search caches: transport spools
    # strip them to stay lean on the wire, but a snapshot taken from a
    # query-warmed process restores warm — reading the caches back is far
    # cheaper than the first query rebuilding them.
    with preserve_search_caches():
        for index, (engine, index_map, epoch) in enumerate(shard_states):
            filename = f"shard-{index}.pkl"
            shard_path = os.path.join(staging, filename)
            write_spool_pickle(shard_path, (engine, index_map), fsync=True)
            shard_entries.append(
                {
                    "file": filename,
                    "bytes": os.path.getsize(shard_path),
                    "crc32": _file_crc32(shard_path),
                    "epoch": int(epoch),
                    "entries": int(engine.num_entries),
                }
            )
    store_path = os.path.join(staging, _STORE_FILE)
    write_spool_pickle(
        store_path,
        {"features": searcher._store_features, "labels": searcher._labels},
        fsync=True,
    )
    store_entry = {
        "file": _STORE_FILE,
        "bytes": os.path.getsize(store_path),
        "crc32": _file_crc32(store_path),
    }

    final_dir = os.path.join(directory, generation)
    os.rename(staging, final_dir)
    _fsync_dir(directory)

    manifest = {
        "format": _SNAPSHOT_FORMAT,
        "kind": "sharded-searcher",
        "snapshot_id": snapshot_id,
        "snapshot_dir": generation,
        "applied_seq": int(applied_seq),
        "num_entries": int(searcher._num_entries),
        "num_features": int(searcher._num_features),
        "appendable": bool(searcher.appendable),
        "requested_shards": searcher.requested_shards,
        "max_rows_per_array": searcher.max_rows_per_array,
        "epoch_counter": int(searcher._epoch_counter),
        "calibration_fingerprint": searcher._shards[0].calibration_fingerprint(),
        "shards": shard_entries,
        "store": store_entry,
    }
    save_json(manifest, os.path.join(directory, MANIFEST_NAME), fsync=True)

    for name in os.listdir(directory):
        if name == generation or not name.startswith("snap-"):
            continue
        shutil.rmtree(os.path.join(directory, name), ignore_errors=True)

    if fault_injector is not None:
        fault_injector.fire("snapshot", None, path=directory)
    return final_dir


def _load_manifest(directory: str) -> Dict[str, Any]:
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise SnapshotIntegrityError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = load_json(manifest_path)
    except (OSError, ValueError) as exc:
        raise SnapshotIntegrityError(f"snapshot manifest unreadable at {manifest_path}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _SNAPSHOT_FORMAT:
        raise SnapshotIntegrityError(f"snapshot manifest malformed at {manifest_path}")
    return manifest


def _verified_payload(snap_dir: str, entry: Dict[str, Any]) -> Any:
    """Load one manifest-referenced file, enforcing its size and CRC.

    Single-pass: the file is read once, checksummed whole against the
    manifest, then unpickled straight from the buffer — the frame's own
    CRC covers the same bytes and is skipped (restore latency is the
    warm-restart budget; every byte is still verified exactly once).
    """
    path = os.path.join(snap_dir, entry["file"])
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise SnapshotIntegrityError(f"snapshot file missing at {path}") from exc
    if len(data) != entry["bytes"] or (zlib.crc32(data) & 0xFFFFFFFF) != entry["crc32"]:
        raise SnapshotIntegrityError(f"snapshot file corrupt at {path} (checksum mismatch)")
    try:
        return load_pickle_spool_bytes(data, path, checksummed=False)
    except SpoolIntegrityError as exc:
        raise SnapshotIntegrityError(f"snapshot file corrupt at {path}: {exc}") from exc


def load_snapshot(directory: str) -> SnapshotState:
    """Load and fully verify the snapshot referenced by the manifest.

    Every file is checked against its manifest size and CRC-32 and then
    against the spool header it carries; any mismatch — including a
    missing manifest or a calibration fingerprint that moved — raises
    :class:`~repro.exceptions.SnapshotIntegrityError`.  Partial state is
    never returned.
    """
    directory = os.fspath(directory)
    manifest = _load_manifest(directory)
    snap_dir = os.path.join(directory, str(manifest["snapshot_dir"]))
    shards: List[Tuple["NearestNeighborSearcher", np.ndarray]] = []
    for entry in manifest["shards"]:
        engine, index_map = _verified_payload(snap_dir, entry)
        shards.append((engine, np.asarray(index_map, dtype=np.int64)))
    if not shards:
        raise SnapshotIntegrityError(f"snapshot at {directory} references no shards")
    store = _verified_payload(snap_dir, manifest["store"])
    fingerprint = shards[0][0].calibration_fingerprint()
    if fingerprint != manifest.get("calibration_fingerprint"):
        raise SnapshotIntegrityError(
            f"snapshot at {directory} restored a different calibration state "
            f"than it recorded"
        )
    return SnapshotState(
        manifest=manifest,
        shards=shards,
        features=store["features"],
        labels=store["labels"],
    )


def load_snapshot_shard(directory: str, shard_index: int) -> Any:
    """Load one verified ``(engine, index_map)`` shard payload by index.

    The executor's restore-from-disk rung: when a published spool entry is
    lost and no parent-resident payload exists (a fresh process after a
    restart), the shard is reloaded straight from the snapshot.
    """
    directory = os.fspath(directory)
    manifest = _load_manifest(directory)
    wanted = f"shard-{shard_index}.pkl"
    for entry in manifest["shards"]:
        if entry["file"] == wanted:
            return _verified_payload(os.path.join(directory, str(manifest["snapshot_dir"])), entry)
    raise SnapshotIntegrityError(
        f"snapshot at {directory} holds no shard {shard_index} "
        f"({len(manifest['shards'])} shards recorded)"
    )

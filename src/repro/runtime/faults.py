"""Deterministic fault injection for the serving runtime.

Chaos testing a recovery path by hoping the kernel kills the right worker
at the right moment is not a test.  :class:`FaultInjector` makes the
failure modes of the ``"processes"`` executor *injectable* at fixed,
seeded points so the chaos suite and the fault-recovery benchmark can
assert exact recovery behavior:

* ``kill_worker`` — SIGKILL one worker process right after a batch is
  dispatched (the mid-batch crash: its futures fail with
  ``BrokenProcessPool``),
* ``corrupt_spool`` — scribble over a published shard spool entry so the
  next cache-miss load fails its checksum
  (:class:`~repro.exceptions.SpoolIntegrityError`),
* ``drop_spool`` — delete a published spool entry outright,
* ``corrupt_segment`` — unlink a just-acquired shared-memory ring
  segment so workers fail to attach (the runtime-shm-loss fault),
* ``delay_collect`` — sleep before a collect, simulating a stalled
  dispatch for deadline tests,
* ``torn_journal_tail`` — truncate the append journal mid-frame right
  after a record lands, reproducing ``kill -9`` during an acknowledged
  append (restore must tolerate the tear and keep every complete record),
* ``corrupt_snapshot`` — scribble over a snapshot shard file so restore
  fails its checksum
  (:class:`~repro.exceptions.SnapshotIntegrityError`),
* ``drop_manifest`` — delete a snapshot's ``manifest.json`` outright.

An injector is armed per fault via :meth:`arm` and handed to an executor
as its ``fault_injector`` (or to a searcher as its
``storage_fault_injector``); the executor calls :meth:`fire` at fixed
sites (``"dispatch"`` right before a batch is submitted, ``"segment"``
right after a ring segment is acquired, ``"collect"`` right before a
collect blocks, ``"journal"`` right after a journal record is fsync'd,
``"snapshot"`` right after a snapshot generation is committed).  Each
site keeps its own occurrence counter, and the
only randomness — ``probability`` draws — comes from one seeded
generator, so a given seed and call sequence always injects the same
faults at the same points.  Everything that fired is logged in
:attr:`fired` for assertions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from random import Random

from ..exceptions import ConfigurationError
from . import transport as _transport

__all__ = ["FaultInjector"]

#: Fault name -> the executor site it fires at.
_FAULT_SITES = {
    "kill_worker": "dispatch",
    "corrupt_spool": "dispatch",
    "drop_spool": "dispatch",
    "corrupt_segment": "segment",
    "delay_collect": "collect",
    "torn_journal_tail": "journal",
    "corrupt_snapshot": "snapshot",
    "drop_manifest": "snapshot",
}


class _ArmedFault:
    __slots__ = ("fault", "site", "at_occurrence", "probability", "remaining", "delay_s")

    def __init__(
        self,
        fault: str,
        at_occurrence: Optional[int],
        probability: Optional[float],
        count: int,
        delay_s: float,
    ) -> None:
        self.fault = fault
        self.site = _FAULT_SITES[fault]
        self.at_occurrence = at_occurrence
        self.probability = probability
        self.remaining = count
        self.delay_s = delay_s

    def should_fire(self, occurrence: int, rng: Random) -> bool:
        if self.remaining <= 0:
            return False
        if self.at_occurrence is not None and occurrence != self.at_occurrence:
            return False
        # Draw even when the occurrence filter alone decides nothing —
        # the draw count per occurrence is what keeps a seed reproducible
        # regardless of which armed fault consumes it.
        if self.probability is not None and rng.random() >= self.probability:
            return False
        self.remaining -= 1
        return True


class FaultInjector:
    """Seeded, deterministic fault injection hooks for an executor.

    Parameters
    ----------
    seed:
        Seed of the generator behind ``probability`` draws.  Injectors
        armed only with ``at_occurrence`` schedules are deterministic
        regardless of the seed.
    """

    FAULTS = tuple(_FAULT_SITES)

    def __init__(self, seed: int = 0) -> None:
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self._armed: List[_ArmedFault] = []
        self._occurrences: Dict[str, int] = {}
        #: Log of injected faults: ``{"fault", "site", "occurrence", "detail"}``.
        self.fired: List[dict] = []

    def arm(
        self,
        fault: str,
        at_occurrence: Optional[int] = None,
        probability: Optional[float] = None,
        count: int = 1,
        delay_s: float = 0.05,
    ) -> "FaultInjector":
        """Arm one fault; returns ``self`` so arms chain.

        ``at_occurrence`` pins the fault to the Nth (0-based) time its
        site is reached; ``probability`` fires it on each matching
        occurrence with the given seeded probability; both ``None`` means
        every occurrence.  ``count`` bounds total fires; ``delay_s`` is
        the ``delay_collect`` sleep.
        """
        if fault not in _FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault {fault!r}; expected one of {sorted(_FAULT_SITES)}"
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1], got {probability!r}")
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count!r}")
        if delay_s < 0:
            raise ConfigurationError(f"delay_s must be >= 0, got {delay_s!r}")
        with self._lock:
            self._armed.append(_ArmedFault(fault, at_occurrence, probability, count, delay_s))
        return self

    def fire(self, site: str, executor: Any, segment: Any = None, path: Any = None) -> None:
        """Run every armed fault scheduled for this visit to ``site``.

        Called by the executor (and the storage tier) at its injection
        points; a site with nothing armed costs one counter bump.  Fault
        execution is best effort — a fault that finds nothing to break (no
        live worker, no published spool entry) logs ``detail: None`` and
        moves on.  ``path`` carries the journal file or storage directory
        for the ``"journal"`` / ``"snapshot"`` sites.
        """
        with self._lock:
            occurrence = self._occurrences.get(site, 0)
            self._occurrences[site] = occurrence + 1
            to_fire = [
                armed
                for armed in self._armed
                if armed.site == site and armed.should_fire(occurrence, self._rng)
            ]
        for armed in to_fire:
            detail = self._execute(armed, executor, segment, path)
            with self._lock:
                self.fired.append(
                    {
                        "fault": armed.fault,
                        "site": site,
                        "occurrence": occurrence,
                        "detail": detail,
                    }
                )

    def _execute(self, armed: _ArmedFault, executor: Any, segment: Any, path: Any) -> Any:
        if armed.fault == "kill_worker":
            return executor._pool.kill_one_worker()
        if armed.fault == "corrupt_spool":
            path = self._pick_spool_entry(executor)
            if path is None:
                return None
            payload_path = (
                os.path.join(path, "payload.pkl") if os.path.isdir(path) else path
            )
            return self._scribble_midstream(payload_path)
        if armed.fault == "torn_journal_tail":
            if path is None:
                return None
            try:
                # Chop less than one frame header off the end: exactly what
                # kill -9 mid-write leaves behind — a complete prefix of
                # records, then a torn final frame.
                size = os.path.getsize(path)
                os.truncate(path, max(0, size - 7))
            except OSError:
                return None
            return path
        if armed.fault == "corrupt_snapshot":
            shard_path = self._pick_snapshot_shard(path)
            if shard_path is None:
                return None
            return self._scribble_midstream(shard_path)
        if armed.fault == "drop_manifest":
            if path is None:
                return None
            manifest_path = os.path.join(path, "manifest.json")
            try:
                os.remove(manifest_path)
            except OSError:
                return None
            return manifest_path
        if armed.fault == "drop_spool":
            path = self._pick_spool_entry(executor)
            if path is None:
                return None
            _transport.remove_spool_entry(path)
            return path
        if armed.fault == "corrupt_segment":
            if segment is None:
                return None
            name = segment.name
            try:
                # Unlink the name only: the parent's mapping stays valid,
                # but workers dispatched against this batch fail to attach
                # — exactly what losing /dev/shm mid-flight looks like.
                os.unlink(os.path.join("/dev/shm", name.lstrip("/")))
            except OSError:
                return None
            return name
        if armed.fault == "delay_collect":
            time.sleep(armed.delay_s)
            return armed.delay_s
        # Unreachable guard: arm() validated the name against _FAULT_SITES,
        # so reaching this line is a programming error, not a serving failure.
        raise AssertionError(f"unreachable fault {armed.fault!r}")  # reprolint: disable=RPL006

    @staticmethod
    def _scribble_midstream(path: str) -> Optional[str]:
        """Overwrite four bytes mid-file, leaving integrity headers intact.

        A clobbered magic would make the file masquerade as a tolerated
        pre-checksum legacy entry; scribbling the payload region instead
        guarantees the CRC can no longer match.
        """
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.seek(size // 2)
                fh.write(b"\xde\xad\xbe\xef")
        except OSError:
            return None
        return path

    @staticmethod
    def _pick_snapshot_shard(directory: Any) -> Optional[str]:
        """The first shard file of the manifest-referenced snapshot."""
        if directory is None:
            return None
        manifest_path = os.path.join(directory, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return None
        shards = manifest.get("shards") or []
        if not shards:
            return None
        return os.path.join(
            directory, str(manifest["snapshot_dir"]), str(shards[0]["file"])
        )

    @staticmethod
    def _pick_spool_entry(executor: Any) -> Optional[str]:
        """The first published spool path, in deterministic key order."""
        with executor._lock:
            entries: List[Tuple[str, str]] = sorted(executor._published.items())
        return entries[0][1] if entries else None

"""Zero-copy transports for the shard-serving runtime.

The ``"processes"`` shard executor moves two kinds of bulk payload across
the process boundary on the serving hot path:

* **per-batch payloads** — the query matrix out to every worker and the
  ranked top-k indices/scores back, and
* **per-epoch payloads** — the programmed shard engines published to the
  spool once per program epoch.

PR 4 shipped both through pickle, which costs one serialize + one
deserialize memcpy per array *and* pushes every byte through the worker
pipes.  This module removes both copies on hosts that support POSIX shared
memory:

* :class:`SharedMemoryRing` manages a small ring of reusable
  ``multiprocessing.shared_memory`` segments.  The parent writes a query
  batch into a segment once; every worker maps the same physical pages and
  writes its shard's top-k distances/indices back **in place**, so no
  ndarray payload is pickled in either direction and only tiny job tuples
  cross the pipes.  :class:`ShardBatchLayout` computes the byte layout of
  one dispatched batch (the query block followed by per-shard result
  blocks).
* :func:`write_spool_bundle` / :func:`load_spool_payload` publish shard
  payloads as memory-mapped ``.npy`` bundles: the pickle stream is written
  with its ndarray buffers extracted out-of-band (pickle protocol 5) and
  each buffer lands in its own ``.npy`` file that workers
  ``np.load(mmap_mode="r")``.  N workers on one host then share one
  physical copy of each shard's programmed profiles instead of N
  deserialized clones — and a worker that never touches a shard never
  faults its pages in at all.

Everything degrades transparently: when ``multiprocessing.shared_memory``
is unavailable (or segment allocation fails at runtime) the executor falls
back to the PR 4 pickle path, and :func:`load_spool_payload` reads both
spool formats, so mixed states during a fallback are safe.

Lifecycle: segments are unlinked on ``close()``, on context-manager exit of
the owning executor, and by a :func:`weakref.finalize` safety net when the
owner is garbage collected without closing.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import weakref
import zlib
from collections import OrderedDict
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - present on every platform CI runs on
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shm_module = None  # type: ignore[assignment]

#: The shared-memory module, or None on builds without ``_posixshmem``.
#: Typed ``Any`` because every call site is guarded by
#: :func:`shared_memory_available`, which mypy cannot see through.
_shared_memory: Any = _shm_module

from ..exceptions import ConfigurationError, SpoolIntegrityError
from ..utils.validation import check_int_in_range


def shared_memory_available() -> bool:
    """Whether POSIX shared memory is usable in this interpreter."""
    return _shared_memory is not None


#: Byte alignment of every block inside a shared segment (cache-line sized,
#: and a multiple of every dtype alignment NumPy will map onto the block).
_BLOCK_ALIGNMENT = 64


def _aligned(nbytes: int) -> int:
    """Round ``nbytes`` up to the block alignment."""
    return -(-nbytes // _BLOCK_ALIGNMENT) * _BLOCK_ALIGNMENT


def _release_segments(segments: List) -> None:
    """Close and unlink every segment in ``segments``, emptying it in place.

    Module-level and fed a plain list so a :func:`weakref.finalize` can call
    it without keeping the owning ring alive.  ``close()`` can raise
    ``BufferError`` while NumPy views of the segment are still alive; the
    unlink (which frees the name and, once the views die, the pages) must
    still happen, so errors are swallowed per step.
    """
    while segments:
        segment = segments.pop()
        try:
            segment.close()
        except BufferError:  # a result view is still alive somewhere
            pass
        try:
            segment.unlink()
        except OSError:  # already gone
            pass


class SharedMemoryRing:
    """A ring of reusable shared-memory segments for query/result batches.

    ``acquire(nbytes)`` hands out segments round-robin across ``depth``
    slots, creating (or growing) a slot's segment only when the requested
    batch does not fit.  Steady-state serving therefore allocates nothing:
    the same segments are rewritten batch after batch.  The ring depth keeps
    the previous batch's result blocks mapped while the next batch is being
    written, so callers may hold the returned result views across exactly
    one subsequent dispatch.

    Parameters
    ----------
    depth:
        Number of independent slots (>= 1).
    """

    def __init__(self, depth: int = 2) -> None:
        if not shared_memory_available():  # pragma: no cover - fallback hosts
            raise ConfigurationError(
                "shared memory is unavailable in this interpreter; "
                "use the pickle transport instead"
            )
        self.depth = check_int_in_range(depth, "depth", minimum=1)
        self._slots: List[Optional[Any]] = [None] * self.depth
        self._cursor = 0
        #: Live segments, shared with the GC safety net: close() empties the
        #: list in place, turning a later finalize into a no-op.
        self._live: List[Any] = []
        self._finalizer = weakref.finalize(self, _release_segments, self._live)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of the currently allocated segments (introspection/tests)."""
        return tuple(segment.name for segment in self._live)

    def acquire(self, nbytes: int) -> Any:
        """A segment of at least ``nbytes``, reusing the next ring slot."""
        slot = self._cursor
        self._cursor = (self._cursor + 1) % self.depth
        segment = self._slots[slot]
        if segment is not None and segment.size >= nbytes:
            return segment
        if segment is not None:
            self._live.remove(segment)
            _release_segments([segment])
        segment = _shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
        self._slots[slot] = segment
        self._live.append(segment)
        return segment

    def close(self) -> None:
        """Unlink every segment (idempotent; the ring is reusable after)."""
        _release_segments(self._live)
        self._slots = [None] * self.depth
        self._cursor = 0

    def __enter__(self) -> "SharedMemoryRing":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


class ShardBatchLayout:
    """Byte layout of one dispatched batch inside a shared segment.

    The query block sits at offset 0; per-shard top-k index and score
    blocks follow, one pair per shard, every block aligned to
    ``_BLOCK_ALIGNMENT``.

    Parameters
    ----------
    queries:
        The batch's query matrix (made C-contiguous; exposed as
        :attr:`queries`).
    shard_ks:
        Per-shard candidate counts (``min(k, shard rows)``), which size the
        result blocks.
    """

    def __init__(self, queries: np.ndarray, shard_ks: Sequence[int]) -> None:
        self.queries = np.ascontiguousarray(queries)
        self.num_queries = int(self.queries.shape[0])
        self.shard_ks = tuple(int(k) for k in shard_ks)
        self.query_offset = 0
        cursor = _aligned(self.queries.nbytes)
        self.index_offsets: List[int] = []
        self.score_offsets: List[int] = []
        for shard_k in self.shard_ks:
            block = self.num_queries * shard_k * np.dtype(np.int64).itemsize
            self.index_offsets.append(cursor)
            cursor = _aligned(cursor + block)
            self.score_offsets.append(cursor)
            cursor = _aligned(cursor + block)
        self.total_bytes = max(cursor, 1)

    def write_queries(self, segment: Any) -> None:
        """Copy the query block into ``segment`` (the transport's one copy)."""
        view = np.ndarray(
            self.queries.shape, dtype=self.queries.dtype, buffer=segment.buf
        )
        view[...] = self.queries

    def result_views(self, segment: Any, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(indices, scores)`` views of one shard's result blocks."""
        shape = (self.num_queries, self.shard_ks[shard])
        indices = np.ndarray(
            shape, dtype=np.int64, buffer=segment.buf, offset=self.index_offsets[shard]
        )
        scores = np.ndarray(
            shape, dtype=np.float64, buffer=segment.buf, offset=self.score_offsets[shard]
        )
        return indices, scores


# ----------------------------------------------------------------------
# Worker-side segment attachments
# ----------------------------------------------------------------------
#: Process-global cache of attached segments by name.  Ring segments are
#: reused across batches, so each worker attaches a handful of names once
#: and serves every subsequent batch from the mapping; the cache is bounded
#: because a ring replaces (rather than accumulates) segment names, and
#: attachments whose segment the parent has unlinked are pruned eagerly so
#: dead pages are not pinned for the worker's lifetime.
_ATTACHED_SEGMENTS: "OrderedDict[str, Any]" = OrderedDict()
_MAX_ATTACHED_SEGMENTS = 8

#: Where the kernel exposes POSIX shared memory as files (Linux).  When the
#: directory exists, a cached attachment whose backing file is gone has
#: been unlinked by its owner and only our mapping keeps its pages alive.
_SHM_DIR = "/dev/shm"


def _close_attachment(segment: Any) -> None:
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view outlived its job
        pass


def _prune_unlinked_attachments() -> None:
    """Drop cached attachments whose segments the owner has unlinked.

    A ring that grows a slot unlinks the old segment in the parent, but the
    steady state only ever re-attaches the live ring names, so the dead
    mapping would otherwise survive below the LRU bound forever — N workers
    each pinning the replaced segment's pages.  Only effective where shared
    memory is file-backed (Linux); elsewhere the LRU bound still applies.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux hosts
        return
    for name in [
        name
        for name in _ATTACHED_SEGMENTS
        if not os.path.exists(os.path.join(_SHM_DIR, name))
    ]:
        _close_attachment(_ATTACHED_SEGMENTS.pop(name))


def attach_segment(name: str) -> Any:
    """Attach (or return the cached attachment of) a shared segment."""
    segment = _ATTACHED_SEGMENTS.get(name)
    if segment is not None:
        _ATTACHED_SEGMENTS.move_to_end(name)
        return segment
    # A new name means the ring moved (first contact, or a slot was
    # replaced by a bigger batch): prune what the owner unlinked.
    _prune_unlinked_attachments()
    segment = _shared_memory.SharedMemory(name=name)
    _ATTACHED_SEGMENTS[name] = segment
    while len(_ATTACHED_SEGMENTS) > _MAX_ATTACHED_SEGMENTS:
        _, stale = _ATTACHED_SEGMENTS.popitem(last=False)
        _close_attachment(stale)
    return segment


# ----------------------------------------------------------------------
# Memory-mapped spool bundles
# ----------------------------------------------------------------------
_BUNDLE_PAYLOAD = "payload.pkl"
_BUNDLE_MANIFEST = "manifest.json"

#: Header of checksummed pickle-spool files: magic, 4-byte little-endian
#: CRC-32 of the pickle stream, 8-byte little-endian stream length.
#: Headerless files are the PR 4 format, still readable (unverified).
_PICKLE_MAGIC = b"RSPL\x01"
_PICKLE_HEADER_BYTES = len(_PICKLE_MAGIC) + 4 + 8


def write_spool_bundle(path: str, payload: Any) -> str:
    """Publish ``payload`` as a memory-mappable bundle directory at ``path``.

    The pickle stream is written with every contiguous ndarray buffer
    extracted out-of-band (protocol 5); each buffer lands in its own
    ``buf<i>.npy`` so :func:`load_spool_payload` can hand ``np.load``
    memory maps back to the unpickler.  A ``manifest.json`` header records
    the stream's CRC-32 and every file's byte size, so readers detect a
    scribbled or truncated bundle (:class:`~repro.exceptions.SpoolIntegrityError`)
    instead of unpickling garbage.  The bundle is assembled in a sibling
    temp directory and renamed into place, so a reader can never observe a
    half-written bundle; callers encode the program epoch in ``path``,
    which is why a plain rename (no replace-over-existing) is enough.
    """
    buffers: List = []
    data = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    staging = f"{path}.tmp"
    shutil.rmtree(staging, ignore_errors=True)
    os.makedirs(staging)
    buffer_bytes = []
    for index, buffer in enumerate(buffers):
        buffer_path = os.path.join(staging, f"buf{index}.npy")
        np.save(buffer_path, np.frombuffer(buffer, dtype=np.uint8))
        buffer_bytes.append(os.path.getsize(buffer_path))
    with open(os.path.join(staging, _BUNDLE_PAYLOAD), "wb") as fh:
        fh.write(data)
    manifest = {
        "format": 1,
        "payload_crc32": zlib.crc32(data) & 0xFFFFFFFF,
        "payload_bytes": len(data),
        "buffer_bytes": buffer_bytes,
    }
    with open(os.path.join(staging, _BUNDLE_MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
    os.rename(staging, path)
    return path


def write_spool_pickle(path: str, payload: Any, fsync: bool = False) -> str:
    """Publish ``payload`` as a checksummed pickle-spool file at ``path``.

    The pickle-transport counterpart of :func:`write_spool_bundle`: the
    stream is prefixed with a magic/CRC-32/length header and atomically
    replaced into place, so readers either see a verifiable complete file
    or the previous epoch's.  ``fsync=True`` flushes the file and its
    directory entry before returning — the durability contract snapshot
    shards need, and overkill for transport spools whose loss is healed
    by a republish.
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = (
        _PICKLE_MAGIC
        + (zlib.crc32(data) & 0xFFFFFFFF).to_bytes(4, "little")
        + len(data).to_bytes(8, "little")
    )
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as fh:
        fh.write(header + data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    if fsync:
        dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return path


def _read_bundle_manifest(path: str) -> Optional[dict]:
    manifest_path = os.path.join(path, _BUNDLE_MANIFEST)
    if not os.path.exists(manifest_path):  # pre-checksum bundle: unverified
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SpoolIntegrityError(f"spool bundle manifest unreadable at {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SpoolIntegrityError(f"spool bundle manifest malformed at {path}")
    return manifest


def _verify_bundle(path: str, manifest: dict, data: bytes) -> None:
    if len(data) != manifest["payload_bytes"] or (
        zlib.crc32(data) & 0xFFFFFFFF
    ) != manifest["payload_crc32"]:
        raise SpoolIntegrityError(f"spool bundle payload corrupt at {path} (checksum mismatch)")
    for index, expected in enumerate(manifest["buffer_bytes"]):
        buffer_path = os.path.join(path, f"buf{index}.npy")
        try:
            actual = os.path.getsize(buffer_path)
        except OSError as exc:
            raise SpoolIntegrityError(f"spool bundle buffer missing at {buffer_path}") from exc
        if actual != expected:
            raise SpoolIntegrityError(
                f"spool bundle buffer truncated at {buffer_path} "
                f"({actual} bytes, expected {expected})"
            )


def _read_pickle_spool(path: str) -> bytes:
    """The verified pickle stream of a pickle-spool file (either format)."""
    with open(path, "rb") as fh:
        head = fh.read(_PICKLE_HEADER_BYTES)
        if not head.startswith(_PICKLE_MAGIC):
            return head + fh.read()  # PR 4 headerless format: unverified
        data = fh.read()
    crc = int.from_bytes(head[len(_PICKLE_MAGIC) : len(_PICKLE_MAGIC) + 4], "little")
    length = int.from_bytes(head[len(_PICKLE_MAGIC) + 4 :], "little")
    if len(data) != length or (zlib.crc32(data) & 0xFFFFFFFF) != crc:
        raise SpoolIntegrityError(f"spool file corrupt at {path} (checksum mismatch)")
    return data


def load_pickle_spool_bytes(data: bytes, source: str, checksummed: bool = True) -> Any:
    """Unpickle an in-memory pickle-spool image, validating its framing.

    The zero-reread path for callers that already hold the whole file —
    the snapshot loader checksums each file against its manifest CRC
    first, then passes ``checksummed=False`` so the frame's own CRC (over
    the same bytes) is not recomputed.  Raises
    :class:`~repro.exceptions.SpoolIntegrityError` on bad framing exactly
    like :func:`load_spool_payload`.
    """
    if not data.startswith(_PICKLE_MAGIC):
        raise SpoolIntegrityError(f"spool image at {source} has no integrity header")
    head = data[:_PICKLE_HEADER_BYTES]
    payload = memoryview(data)[_PICKLE_HEADER_BYTES:]
    crc = int.from_bytes(head[len(_PICKLE_MAGIC) : len(_PICKLE_MAGIC) + 4], "little")
    length = int.from_bytes(head[len(_PICKLE_MAGIC) + 4 :], "little")
    if len(payload) != length:
        raise SpoolIntegrityError(f"spool image truncated at {source}")
    if checksummed and (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise SpoolIntegrityError(f"spool image corrupt at {source} (checksum mismatch)")
    try:
        return pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, ValueError) as exc:
        raise SpoolIntegrityError(f"spool image unreadable at {source}: {exc}") from exc


def load_spool_payload(path: str) -> Any:
    """Load a published shard payload from either spool format, verified.

    Bundle directories reconstruct their pickled object around
    ``np.load(mmap_mode="r")`` buffer views, so every ndarray in the
    payload is backed by the page cache and shared physically across the
    workers of one host (the arrays come back read-only, which the search
    path never violates).  Plain files are the pickle spool.  Both formats
    carry checksummed headers; a missing, truncated or scribbled entry
    raises :class:`~repro.exceptions.SpoolIntegrityError` — a typed,
    recoverable signal the executor answers by evicting and republishing
    the entry — instead of crashing the worker on garbage bytes.
    """
    try:
        if os.path.isdir(path):
            manifest = _read_bundle_manifest(path)
            with open(os.path.join(path, _BUNDLE_PAYLOAD), "rb") as fh:
                data = fh.read()
            if manifest is not None:
                _verify_bundle(path, manifest, data)
            buffers: List[np.ndarray] = []
            index = 0
            while True:
                buffer_path = os.path.join(path, f"buf{index}.npy")
                if not os.path.exists(buffer_path):
                    break
                buffers.append(np.load(buffer_path, mmap_mode="r"))
                index += 1
            return pickle.loads(data, buffers=buffers)
        data = _read_pickle_spool(path)
        return pickle.loads(data)
    except SpoolIntegrityError:
        raise
    except FileNotFoundError as exc:
        raise SpoolIntegrityError(f"spool entry missing at {path}") from exc
    except (OSError, pickle.UnpicklingError, EOFError, ValueError) as exc:
        raise SpoolIntegrityError(f"spool entry unreadable at {path}: {exc}") from exc


def verify_spool_entry(path: str) -> bool:
    """Whether a published spool entry passes its integrity header.

    The parent-side recovery check: cheap (checksums the pickle stream,
    stats the buffer files — never unpickles or maps the payload) and
    tolerant of pre-checksum entries, which report healthy as long as the
    file exists.  Used by the supervisor to decide which entries must be
    republished after a fault.
    """
    try:
        if os.path.isdir(path):
            manifest = _read_bundle_manifest(path)
            with open(os.path.join(path, _BUNDLE_PAYLOAD), "rb") as fh:
                data = fh.read()
            if manifest is not None:
                _verify_bundle(path, manifest, data)
            return True
        _read_pickle_spool(path)
        return True
    except (SpoolIntegrityError, OSError):
        return False


def remove_spool_entry(path: str) -> None:
    """Delete a published spool entry of either format (best effort)."""
    if os.path.isdir(path):
        shutil.rmtree(path, ignore_errors=True)
        return
    try:
        os.remove(path)
    except OSError:
        pass


__all__ = [
    "SharedMemoryRing",
    "ShardBatchLayout",
    "attach_segment",
    "load_spool_payload",
    "remove_spool_entry",
    "shared_memory_available",
    "verify_spool_entry",
    "write_spool_bundle",
    "write_spool_pickle",
]

"""Persistent worker-process pools: the cross-process execution substrate.

CPython executes one interpreter thread at a time, so thread pools only help
where NumPy releases the GIL.  The Monte-Carlo experiment harnesses spend a
large share of their time in interpreter-bound code (episode bookkeeping,
RNG management, per-trial model construction), which threads cannot
parallelize — worker *processes* can.

:class:`PersistentProcessPool` wraps a lazily started
:class:`concurrent.futures.ProcessPoolExecutor` that stays warm across map
calls, so one experiment pays the worker start-up cost once rather than per
dispatch.  Two consumers build on it:

* :class:`ProcessShardExecutor` — the ``"processes"`` strategy on the
  :func:`~repro.core.sharding.register_shard_executor` seam, ranking the
  shards of one query batch in worker processes,
* :class:`~repro.runtime.trials.ParallelTrialRunner` — the Monte-Carlo
  trial/episode dispatcher used by the Fig. 7/8 sweeps.

Work functions and jobs must be picklable (module-level functions and
plain-data payloads); both consumers are structured that way, which is also
what guarantees workers see self-contained jobs and therefore produce
results bitwise identical to in-process execution.

**Worker-resident shard caching.**  Shipping a programmed shard engine on
every query batch throws away the amortization that makes in-memory CAM
search fast (arrays are programmed once and queried many times).  The
``"processes"`` shard executor therefore publishes each programmed shard to
a spool **once per program epoch**; workers keep a process-global cache
keyed by ``(searcher_id, shard_index, program_epoch)`` and load a shard from
the spool only when the key misses — i.e. on first contact or after a
reprogram/append bumped the shard's epoch.  Steady-state query batches ship
only query payloads.  A worker can never serve stale state: every job
carries the current epoch, and an epoch mismatch forces a reload.  Closing
a :class:`~repro.core.sharding.ShardedSearcher` sends an eviction message
(:meth:`ProcessShardExecutor.evict`) so long-running shared pools do not
accumulate shards of dead searchers.

**Zero-copy transport.**  On hosts with POSIX shared memory (the default,
``transport="auto"``) steady-state batches do not pickle ndarray payloads
at all: queries are written once into a :class:`~.transport.SharedMemoryRing`
segment that every worker maps, workers write their top-k indices/scores
back into the same segment in place, and published shards are memory-mapped
``.npy`` bundles whose pages all workers share.  When shared memory is
unavailable (or fails at runtime) the executor falls back transparently to
the PR 4 pickle path — results are bitwise identical either way.

**Supervision and recovery.**  Cached-rank dispatches are supervised: a
batch whose worker crashes (``BrokenProcessPool``), hangs past
``dispatch_timeout_s``, reads a corrupt spool entry, or loses its
shared-memory segment is not fatal.  The executor *heals in place* —
terminate the dead pool, re-arm the ring, verify and republish spool
entries from the parent-resident payloads (see
:class:`~.supervision.PoolSupervisor`) — and retries the idempotent batch
once on the healed pool before failing it with a typed error
(:class:`~repro.exceptions.WorkerCrashError` /
:class:`~repro.exceptions.ServingTimeoutError`).  Transport degradation is
a ladder: a :class:`~.supervision.CircuitBreaker` demotes ``shm → pickle``
on segment failures (re-probing shm after a cool-down), and a pool that
dies faster than it heals is demoted to in-process serial execution —
bitwise identical, just slow — until its own cool-down passes.  All
injection points for the chaos suite live in :mod:`~.faults`.

All pools support the context-manager protocol, ``close()`` is idempotent,
and a :func:`weakref.finalize`-based safety net shuts workers down (and
unlinks shared-memory segments) at garbage collection or interpreter exit
when a caller forgets to close.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import signal
import tempfile
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.sharding import register_shard_executor
from ..exceptions import (
    ConfigurationError,
    ServingError,
    ServingTimeoutError,
    SnapshotIntegrityError,
    SpoolIntegrityError,
    WorkerCrashError,
)
from ..utils.validation import check_int_in_range
from . import transport as _transport
from .supervision import CircuitBreaker, PoolSupervisor


#: Bound on each best-effort broadcast delivery wait: generous next to any
#: real hygiene job, but finite, so ``close()`` paths cannot hang on a
#: wedged worker.
_BROADCAST_TIMEOUT_S = 30.0


def default_worker_count() -> int:
    """Worker count used when none is requested: the host CPU count."""
    return os.cpu_count() or 1


def _probe_echo(value: Any) -> Any:
    """Trivial round-trip job used by :meth:`PersistentProcessPool.probe`."""
    return value


def _await_futures(futures: List, timeout: Optional[float] = None, what: str = "batch") -> List:
    """Gather future results in order, translating failures to typed errors.

    The single choke point that turns the two untyped ways a dispatched
    batch can die into the library's typed serving errors: a future that
    does not resolve within the (shared, wall-clock) ``timeout`` raises
    :class:`~repro.exceptions.ServingTimeoutError`, and a broken pool (a
    worker killed mid-batch) raises
    :class:`~repro.exceptions.WorkerCrashError` with the executor failure
    chained.  Job-raised exceptions (e.g. a worker surfacing
    :class:`~repro.exceptions.SpoolIntegrityError`) propagate untouched.
    On timeout, still-pending futures are cancelled best-effort; futures
    already running on a hung worker cannot be cancelled — reclaiming
    that worker is the supervisor's job, not this helper's.
    """
    deadline = None if timeout is None else time.monotonic() + float(timeout)
    results = []
    for future in futures:
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        try:
            results.append(future.result(remaining))
        except _FuturesTimeout as exc:
            for pending in futures:
                pending.cancel()
            raise ServingTimeoutError(
                f"{what} missed its {float(timeout):.3f}s deadline; a worker is "
                "hung or the pool is overloaded"
            ) from exc
        except BrokenExecutor as exc:
            raise WorkerCrashError(f"{what} failed: a worker process died mid-batch") from exc
    return results


class PersistentProcessPool:
    """A process pool that starts lazily and stays warm across map calls.

    Supports ``with`` blocks; :meth:`close` is idempotent and a finalizer
    shuts the workers down at garbage collection or interpreter exit if the
    owner never closed the pool explicitly.

    Parameters
    ----------
    num_workers:
        Worker-process count; defaults to the host CPU count.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is not None:
            num_workers = check_int_in_range(num_workers, "num_workers", minimum=1)
        self.num_workers = num_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    @property
    def effective_workers(self) -> int:
        """Workers the pool runs with (requested count or the CPU count)."""
        return self.num_workers if self.num_workers is not None else default_worker_count()

    @property
    def is_live(self) -> bool:
        """Whether worker processes are currently running."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.effective_workers)
            self._pool = pool
            # Safety net: shut the workers down when the pool object is
            # garbage collected or the interpreter exits, even if the owner
            # forgot close(); close() triggers the same finalizer.
            self._finalizer = weakref.finalize(self, pool.shutdown, wait=True)
        return self._pool

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (empty when not running)."""
        if self._pool is None:
            return []
        return sorted(getattr(self._pool, "_processes", {}).keys())

    def kill_one_worker(self) -> Optional[int]:
        """SIGKILL one live worker (lowest PID); returns the PID or None.

        The crash primitive behind the fault-injection harness and the
        chaos tests: a SIGKILL mid-batch is exactly what an OOM kill looks
        like to the pool.
        """
        pids = self.worker_pids()
        if not pids:
            return None
        pid = pids[0]
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:  # already reaped
            return None
        return pid

    def probe(self, timeout: float = 5.0) -> bool:
        """Whether a trivial round-trip through the pool completes in time.

        Starts the pool if needed; False means the pool is broken or every
        worker is wedged — the caller should heal before dispatching.
        """
        try:
            future = self._ensure_pool().submit(_probe_echo, 42)
            return bool(future.result(timeout) == 42)
        except Exception:
            return False

    def map(
        self,
        fn: Callable,
        jobs: Iterable,
        chunksize: int = 1,
        timeout: Optional[float] = None,
    ) -> List:
        """Apply ``fn`` to every job in worker processes, preserving order.

        ``fn`` and every job must be picklable.  Zero or one job short-cuts
        to an in-process call — the results are identical either way because
        jobs are self-contained.  With a ``timeout`` (seconds, covering the
        whole map) a hung worker raises
        :class:`~repro.exceptions.ServingTimeoutError` and a crashed one
        :class:`~repro.exceptions.WorkerCrashError` instead of deadlocking
        the caller; the timed path submits futures individually, so
        ``chunksize`` applies only to the untimed path.
        """
        job_list = list(jobs)
        if len(job_list) <= 1:
            return [fn(job) for job in job_list]
        pool = self._ensure_pool()
        if timeout is None:
            return list(pool.map(fn, job_list, chunksize=max(1, chunksize)))
        futures = [pool.submit(fn, job) for job in job_list]
        return _await_futures(futures, timeout, what=f"map of {len(job_list)} jobs")

    def submit_all(self, fn: Callable, jobs: Iterable) -> List:
        """Submit ``fn(job)`` for every job, returning the futures in order.

        The non-blocking counterpart of :meth:`map`: the caller collects the
        futures when it needs the results, which is what lets a dispatcher
        keep several batches in flight on the workers at once.  ``fn`` and
        every job must be picklable.  Collect with :func:`_await_futures`
        (or ``future.result(timeout)``) when a hung worker must become a
        typed error instead of a deadlock.
        """
        pool = self._ensure_pool()
        return [pool.submit(fn, job) for job in jobs]

    def broadcast(self, fn: Callable, arg: Any) -> int:
        """Best-effort: submit ``fn(arg)`` once per worker slot, then wait.

        Intended for idempotent housekeeping messages (cache eviction).
        Coverage is *not* guaranteed — a fast worker may pick up several of
        the submitted jobs while a busy one sees none — and neither is
        delivery: a broken pool (e.g. an OOM-killed worker) is swallowed,
        never raised, because correctness must not depend on the message
        being observed (stale cache entries are inert; eviction is memory
        hygiene) and broadcasts run on cleanup paths like ``close()``.
        Returns the number of deliveries that completed (0 when the pool is
        not running: dead workers have no caches to clean).
        """
        if self._pool is None:
            return 0
        try:
            futures = [
                self._pool.submit(fn, arg) for _ in range(self.effective_workers)
            ]
        except Exception:  # pool already shut down or broken
            return 0
        delivered = 0
        for future in futures:
            try:
                # Bounded so a hung worker cannot wedge the cleanup paths
                # broadcasts run on; an undelivered hygiene message is fine.
                future.result(_BROADCAST_TIMEOUT_S)
                delivered += 1
            except Exception:  # a worker died; hygiene stays best-effort
                continue
        return delivered

    def terminate(self) -> None:
        """Hard-stop the workers now (idempotent; the pool restarts lazily).

        The heal-path counterpart of :meth:`close`: ``close()`` waits for
        workers to finish, which deadlocks on a hung worker — this SIGTERMs
        every worker process after cancelling queued work, then reaps them.
        Pending futures fail with ``BrokenProcessPool``/cancellation; the
        supervisor retries their batches on the respawned pool.
        """
        pool, self._pool = self._pool, None
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        with contextlib.suppress(Exception):  # pool already broken mid-shutdown
            pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:
                continue
        for process in processes:
            try:
                process.join(timeout=2.0)
                if process.is_alive():  # ignored SIGTERM: escalate
                    process.kill()
                    process.join(timeout=5.0)
            except Exception:
                continue

    def close(self) -> None:
        """Shut the workers down (idempotent; the pool restarts on next use)."""
        finalizer, self._finalizer = self._finalizer, None
        self._pool = None
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "PersistentProcessPool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Worker-resident shard cache
# ----------------------------------------------------------------------
#: Process-global store of shard payloads resident in THIS worker process:
#: ``(searcher_id, shard_index) -> (program_epoch, shard_engine, index_map)``.
#: A worker serves a cached shard only when the job's epoch matches the
#: cached epoch, so reprogramming (which bumps the epoch) can never be
#: answered from stale state.  The store is LRU-bounded: eviction messages
#: from :meth:`ShardedSearcher.close` are best-effort (a busy worker can
#: miss a broadcast), so the bound is what *deterministically* keeps a
#: long-running pool from accumulating dead searchers' shards — a missed
#: eviction ages out as soon as live searchers touch enough other shards.
_WORKER_SHARD_CACHE: "OrderedDict[Tuple[str, int], Tuple[int, Any, np.ndarray]]" = (
    OrderedDict()
)

#: Resident-shard bound per worker process: generous next to realistic
#: shards-per-searcher counts (a worker rarely serves more than a few
#: searchers x a few shards each), tight enough that a leaked entry cannot
#: outlive 64 distinct live-shard touches.
_MAX_RESIDENT_SHARDS = 64


def worker_shard_cache_epochs() -> Dict[Tuple[str, int], int]:
    """Epochs of the shards resident in the calling process (introspection)."""
    return {key: entry[0] for key, entry in _WORKER_SHARD_CACHE.items()}


def _evict_searcher_entries(searcher_id: str) -> int:
    """Drop the calling process's cached shards of one searcher."""
    stale = [key for key in _WORKER_SHARD_CACHE if key[0] == searcher_id]
    for key in stale:
        del _WORKER_SHARD_CACHE[key]
    return len(stale)


def _resident_shard(
    searcher_id: str, shard_index: int, epoch: int, path: str
) -> Tuple[Any, np.ndarray]:
    """The worker-resident ``(shard, index_map)`` for one cache key.

    On an epoch match the resident entry serves without touching the spool;
    on a miss the published payload (pickle file or memory-mapped bundle)
    is loaded and replaces the cached entry in place.  A corrupt or missing
    spool entry raises :class:`~repro.exceptions.SpoolIntegrityError` —
    typed and recoverable (the parent repairs the spool and retries) —
    instead of crashing the worker on garbage bytes.
    """
    key = (searcher_id, shard_index)
    entry = _WORKER_SHARD_CACHE.get(key)
    if entry is None or entry[0] != epoch:
        shard, index_map = _transport.load_spool_payload(path)
        entry = (epoch, shard, index_map)
        _WORKER_SHARD_CACHE[key] = entry
    _WORKER_SHARD_CACHE.move_to_end(key)
    while len(_WORKER_SHARD_CACHE) > _MAX_RESIDENT_SHARDS:
        _WORKER_SHARD_CACHE.popitem(last=False)
    return entry[1], entry[2]


def _rank_cached_shard_job(job: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Rank one query batch on a worker-resident shard (pickle transport).

    The job carries ``(searcher_id, shard_index, epoch, spool_path,
    shard_rng, queries, shard_k)``; queries and results travel pickled
    through the worker pipes (the PR 4 path, kept as the shared-memory
    fallback).
    """
    searcher_id, shard_index, epoch, path, shard_rng, queries, shard_k = job
    shard, index_map = _resident_shard(searcher_id, shard_index, epoch, path)
    indices, scores = shard._rank_batch(queries, rng=shard_rng, k=shard_k)
    return index_map[indices.astype(np.int64, copy=False)], scores


def _rank_cached_shard_job_shm(job: Any) -> int:
    """Rank one query batch on a worker-resident shard (shared memory).

    The job carries only plain metadata — cache key, spool path, RNG and
    the segment descriptor ``(name, query shape/dtype, result offsets,
    shard_k)``.  Queries are read directly from the mapped segment and the
    globally indexed top-k results are written back in place; nothing but
    this small tuple and the returned shard index crosses the pipes.
    """
    (
        searcher_id,
        shard_index,
        epoch,
        path,
        shard_rng,
        segment_name,
        query_shape,
        query_dtype,
        index_offset,
        score_offset,
        shard_k,
    ) = job
    segment = _transport.attach_segment(segment_name)
    queries = np.ndarray(query_shape, dtype=np.dtype(query_dtype), buffer=segment.buf)
    queries.flags.writeable = False
    shard, index_map = _resident_shard(searcher_id, shard_index, epoch, path)
    indices, scores = shard._rank_batch(queries, rng=shard_rng, k=shard_k)
    shape = (query_shape[0], shard_k)
    out_indices = np.ndarray(
        shape, dtype=np.int64, buffer=segment.buf, offset=index_offset
    )
    out_scores = np.ndarray(
        shape, dtype=np.float64, buffer=segment.buf, offset=score_offset
    )
    out_indices[...] = index_map[indices.astype(np.int64, copy=False)]
    out_scores[...] = scores
    return int(shard_index)


class ProcessShardExecutor:
    """Rank shards in a persistent, supervised worker-process pool.

    The ``"processes"`` strategy of the shard-executor seam.  Programmed
    shards are published to a spool once per program epoch and cached
    worker-resident (see the module docstring), so steady-state query
    batches ship only query payloads; jobs and results stay bitwise
    identical to the ``"serial"`` and ``"threads"`` strategies at any worker
    count because per-shard RNG streams are spawned before dispatch and the
    ranked payloads are self-contained.  That self-containment is also what
    makes recovery safe: a crashed or hung batch can be replayed on a
    healed pool and produce the same bytes.

    Parameters
    ----------
    num_workers:
        Worker-process bound; defaults to the host CPU count.
    shard_cache:
        Set False to fall back to shipping every programmed shard with
        every batch (the pre-caching behavior, kept as a measurable
        baseline).
    transport:
        ``"auto"`` (the default) uses the zero-copy shared-memory transport
        — query/result batches in a :class:`~.transport.SharedMemoryRing`,
        shards published as memory-mapped ``.npy`` bundles — when the host
        supports it and falls back to ``"pickle"`` otherwise; ``"shm"``
        requires shared memory (raising on hosts without it) and
        ``"pickle"`` forces the PR 4 pickle path.  A runtime shared-memory
        failure (e.g. an exhausted ``/dev/shm``) trips a circuit breaker
        that downgrades ``"auto"`` to the pickle path transparently and
        re-probes shm after ``shm_cooldown_s``; both transports produce
        bitwise identical results.
    ring_depth:
        Slots in the shared-memory ring, i.e. how many dispatched batches
        may be **in flight** at once on the shm transport (a slot may only
        be rewritten after its batch has been collected).  The default of 2
        lets a serving scheduler overlap one batch's worker-side compute
        with the next batch's dispatch; raise it for deeper pipelines.
    dispatch_timeout_s:
        Per-attempt hang detector for supervised cached-rank collects: an
        attempt that has not resolved after this many seconds is treated
        as a hung worker — the pool is healed and the batch retried within
        whatever remains of its overall deadline.  ``None`` (the default)
        disables the detector; a ``timeout`` passed to
        :meth:`submit_cached` (or its collect) still bounds the batch.
    max_restarts / restart_window_s / serial_cooldown_s:
        Restart budget of the :class:`~.supervision.PoolSupervisor`:
        ``max_restarts`` heals inside ``restart_window_s`` demote the
        executor to in-process serial execution, re-probing the pool after
        ``serial_cooldown_s``.
    shm_cooldown_s:
        Cool-down of the shared-memory circuit breaker before a demoted
        transport is probed again.

    The pool itself persists across searches — the worker start-up cost is
    paid once per searcher, not per query batch.  Spool/eviction
    bookkeeping is thread-safe, so a serving scheduler's pump thread and
    foreground lifecycle calls (``close``/``evict``) can overlap; the
    shared-memory ring itself is single-dispatcher (route all of one
    executor's batch traffic through one thread, e.g. one scheduler).

    Chaos tests hand the executor a :class:`~.faults.FaultInjector` via the
    :attr:`fault_injector` attribute; production leaves it ``None``.
    """

    name = "processes"

    #: Recognized transport modes.
    _TRANSPORTS = ("auto", "shm", "pickle")

    def __init__(
        self,
        num_workers: Optional[int] = None,
        shard_cache: bool = True,
        transport: str = "auto",
        ring_depth: int = 2,
        dispatch_timeout_s: Optional[float] = None,
        max_restarts: int = 5,
        restart_window_s: float = 30.0,
        serial_cooldown_s: float = 5.0,
        shm_cooldown_s: float = 30.0,
    ) -> None:
        if transport not in self._TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {self._TRANSPORTS}, got {transport!r}"
            )
        if transport == "shm" and not _transport.shared_memory_available():
            raise ConfigurationError(
                "transport='shm' requires multiprocessing.shared_memory, "
                "which is unavailable on this host; use 'auto' or 'pickle'"
            )
        if dispatch_timeout_s is not None and not float(dispatch_timeout_s) > 0:
            raise ConfigurationError(
                f"dispatch_timeout_s must be > 0 or None, got {dispatch_timeout_s!r}"
            )
        self._pool = PersistentProcessPool(num_workers=num_workers)
        self.num_workers = self._pool.num_workers
        self.shard_cache = bool(shard_cache)
        self.transport = transport
        self.ring_depth = check_int_in_range(ring_depth, "ring_depth", minimum=1)
        self.dispatch_timeout_s = (
            None if dispatch_timeout_s is None else float(dispatch_timeout_s)
        )
        #: One runtime shm failure demotes to pickle (the attempt is never
        #: worth repaying while /dev/shm is broken); shm is probed again
        #: after the cool-down.
        self._shm_breaker = CircuitBreaker(failure_threshold=1, cooldown_s=shm_cooldown_s)
        # The supervisor must not keep the executor alive (the GC safety
        # nets rely on refcount death of abandoned executors), so it gets
        # the heal callback through a weak method, never a bound one.
        heal_ref = weakref.WeakMethod(self._heal_pool)

        def _heal_weak() -> None:
            heal = heal_ref()
            if heal is not None:
                heal()

        self._supervisor = PoolSupervisor(
            _heal_weak,
            max_restarts=max_restarts,
            restart_window_s=restart_window_s,
            cooldown_s=serial_cooldown_s,
        )
        #: Chaos-test hook: a :class:`~.faults.FaultInjector` or ``None``.
        self.fault_injector: Any = None
        #: Cold-tenancy hook: a :class:`~repro.storage.tenancy.ColdTenantPool`
        #: (or anything with ``touch(searcher_id)``) notified on every cached
        #: dispatch so serving traffic refreshes LRU recency.
        self.tenant_policy: Any = None
        #: ``(snapshot directory, applied_seq)`` per restored/snapshotted
        #: searcher — the restore-from-disk rung: a spool entry that is
        #: corrupt while no parent-resident payload exists (a
        #: warm-restarted host) is republished straight from the snapshot
        #: on disk, but only while the snapshot still covers the
        #: searcher's last acknowledged append.
        self._restore_sources: Dict[str, Tuple[str, int]] = {}
        #: Last acknowledged append sequence per searcher (monotonic; fed
        #: by :meth:`note_append_seq`).  Compared against a restore
        #: source's ``applied_seq`` so the disk rung never republishes a
        #: shard from a snapshot that pre-dates acknowledged appends.
        self._append_seqs: Dict[str, int] = {}
        self._ring: Optional[_transport.SharedMemoryRing] = None
        #: Dispatched-but-uncollected batches on the shared-memory ring.
        #: Guards slot reuse: batch ``N + ring_depth`` rewrites batch
        #: ``N``'s segment, so overcommitting the ring must fast-fail
        #: instead of silently corrupting an in-flight batch.
        self._ring_inflight = 0
        self._spool_dir: Optional[str] = None
        self._spool_finalizer: Optional[weakref.finalize] = None
        #: Current spool path per published ``(searcher_id, shard_index)``;
        #: epoch-named bundle publications replace (and delete) the previous
        #: epoch's entry.
        self._published: Dict[Tuple[str, int], str] = {}
        #: Parent-resident payload per published key (payload, epoch) —
        #: the recovery source of truth.  Spool files live in the parent's
        #: tempdir and survive worker death, but a *corrupt or deleted*
        #: entry can only be republished because the parent still holds the
        #: payload object; the shard objects are alive in the owning
        #: searcher anyway, so these references cost no copies.
        self._payloads: Dict[Tuple[str, int], Tuple[object, int]] = {}
        #: Serializes publish/evict/close bookkeeping: a scheduler pump
        #: thread publishing epochs must not race a foreground ``close()``
        #: (or two searchers' ``close()`` calls racing each other) over the
        #: published-path table and the spool directory.
        self._lock = threading.Lock()

    @property
    def supports_shard_cache(self) -> bool:
        """Whether the sharded searcher should dispatch cache-keyed jobs."""
        return self.shard_cache

    @property
    def dispatch_depth(self) -> Optional[int]:
        """Batches that may be in flight at once (``None``: unbounded).

        On the shared-memory transport this is the ring depth — batch
        ``N + ring_depth`` reuses batch ``N``'s slot, so ``N`` must be
        collected first.  The pickle transport pipes self-contained result
        payloads, so nothing aliases and the bound disappears.
        """
        if self.active_transport == "shm":
            return self.ring_depth
        return None

    @property
    def ring_in_flight(self) -> int:
        """Dispatched-but-uncollected batches currently on the ring."""
        with self._lock:
            return self._ring_inflight

    @property
    def _shm_failed(self) -> bool:
        """Whether the shm breaker is tripped (compat alias; read-only)."""
        return self._shm_breaker.tripped

    @property
    def supervisor(self) -> PoolSupervisor:
        """The restart/demotion policy object (monitoring, chaos tests)."""
        return self._supervisor

    @property
    def active_transport(self) -> str:
        """Transport actually in use right now: ``"shm"`` or ``"pickle"``."""
        if self.transport == "pickle" or not self._shm_breaker.allows():
            return "pickle"
        if self.transport == "shm":
            return "shm"
        return "shm" if _transport.shared_memory_available() else "pickle"

    def _fire_fault(self, site: str, segment: Any = None) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.fire(site, self, segment=segment)

    def _ensure_spool(self) -> str:
        if self._spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-shard-spool-")
            self._spool_dir = spool_dir
            self._spool_finalizer = weakref.finalize(
                self, shutil.rmtree, spool_dir, ignore_errors=True
            )
        return self._spool_dir

    def _ensure_ring(self) -> _transport.SharedMemoryRing:
        if self._ring is None:
            self._ring = _transport.SharedMemoryRing(depth=self.ring_depth)
        return self._ring

    def publish_shard(
        self, searcher_id: str, shard_index: int, payload: Any, epoch: int = 0
    ) -> str:
        """Write one shard's payload to the spool, return its path.

        Called by the sharded searcher once per ``(shard, program epoch)`` —
        not per batch.  The shared-memory transport publishes an epoch-named
        memory-mapped bundle (readers can never observe a half-written
        epoch because the directory is renamed into place, and the previous
        epoch's bundle is deleted after the swap); the pickle transport
        writes an atomically replaced, checksum-headered pickle file.  Both
        formats carry integrity headers, and the payload reference is
        retained parent-side so the supervisor can republish a corrupted
        entry during recovery.
        """
        with self._lock:
            stem = os.path.join(
                self._ensure_spool(), f"{searcher_id}-shard{shard_index}"
            )
            key = (searcher_id, shard_index)
            previous = self._published.get(key)
            if self.active_transport == "shm":
                path = _transport.write_spool_bundle(f"{stem}-e{epoch}", payload)
            else:
                path = _transport.write_spool_pickle(f"{stem}.pkl", payload)
            if previous is not None and previous != path:
                _transport.remove_spool_entry(previous)
            self._published[key] = path
            self._payloads[key] = (payload, epoch)
            return path

    def attach_restore_source(
        self, searcher_id: str, directory: str, applied_seq: int = 0
    ) -> None:
        """Register a snapshot directory as a searcher's disk restore source.

        Called by :meth:`~repro.core.sharding.ShardedSearcher.snapshot` and
        ``restore()``: once attached, spool recovery has one rung below the
        parent-resident payloads — a corrupt or missing entry whose payload
        reference is gone (a warm-restarted process, an evicted tenant) is
        reloaded from the verified snapshot instead of failing the batch.
        ``applied_seq`` is the append sequence the snapshot covers up to;
        appends acknowledged after it (see :meth:`note_append_seq`) make
        the source stale, and the rung then refuses it.
        """
        with self._lock:
            self._restore_sources[searcher_id] = (os.fspath(directory), int(applied_seq))
            current = self._append_seqs.get(searcher_id, 0)
            self._append_seqs[searcher_id] = max(current, int(applied_seq))

    def note_append_seq(self, searcher_id: str, seq: int) -> None:
        """Record a searcher's last acknowledged append sequence (monotonic).

        Called by :meth:`~repro.core.sharding.ShardedSearcher.append` after
        each acknowledged append: a restore source whose ``applied_seq``
        falls behind this watermark no longer reflects the searcher's
        served state and is refused by the disk-restore rung.
        """
        with self._lock:
            current = self._append_seqs.get(searcher_id, 0)
            self._append_seqs[searcher_id] = max(current, int(seq))

    def _load_restore_payload(
        self, key: Tuple[str, int], source: Optional[Tuple[str, int]]
    ) -> Any:
        """The restore-from-disk rung: reload one shard from its snapshot.

        Returns ``None`` when there is no restore source, the snapshot
        itself fails verification, or acknowledged appends have landed
        after the snapshot was taken (its shard payloads would serve
        stale rows with valid checksums) — recovery then has nothing left
        to offer and the batch fails typed rather than serving wrong
        results.  Disk restores and stale refusals are counted on the
        supervisor for observability.
        """
        if source is None:
            return None
        directory, snapshot_seq = source
        with self._lock:
            current_seq = self._append_seqs.get(key[0], snapshot_seq)
        if current_seq > snapshot_seq:
            self._supervisor.record_stale_restore()
            return None
        from ..storage.snapshot import load_snapshot_shard

        try:
            payload = load_snapshot_shard(directory, key[1])
        except (SnapshotIntegrityError, OSError):
            return None
        self._supervisor.record_disk_restore()
        return payload

    def _republish_entry(self, path: str, payload: Any) -> None:
        """Rewrite one spool entry in place, preserving its path and format.

        Recovery must not move entries: dispatched job tuples carry the
        spool path, and retried batches replay those same tuples.
        """
        if path.endswith(".pkl"):
            _transport.write_spool_pickle(path, payload)
        else:
            _transport.remove_spool_entry(path)
            _transport.write_spool_bundle(path, payload)

    def _repair_spool(self) -> int:
        """Verify every published entry; republish the broken ones.

        Returns how many entries were republished.  Broken entries are
        rewritten from the parent-resident payload when one exists, else
        from the searcher's snapshot restore source (the disk rung); an
        entry with neither is skipped — its jobs fail typed.
        """
        with self._lock:
            entries = [
                (key, path, self._payloads.get(key))
                for key, path in self._published.items()
            ]
            sources = dict(self._restore_sources)
        repaired = 0
        for key, path, payload_entry in entries:
            if _transport.verify_spool_entry(path):
                continue
            payload = None if payload_entry is None else payload_entry[0]
            if payload is None:
                payload = self._load_restore_payload(key, sources.get(key[0]))
            if payload is None:
                continue
            self._republish_entry(path, payload)
            repaired += 1
        return repaired

    def _heal_pool(self) -> None:
        """Replace the dead pool and replay recovery (supervisor callback).

        Terminates the workers (hard: a hung worker cannot be waited on),
        drops the shared-memory ring so in-flight slots cannot alias the
        next generation's batches, and verifies/republishes the spool.
        The pool itself respawns lazily on the next dispatch; workers
        rebuild their shard caches from the (verified) spool on first
        contact, which is the same cold path as any first batch.
        """
        self._pool.terminate()
        with self._lock:
            ring, self._ring = self._ring, None
            self._ring_inflight = 0
        if ring is not None:
            ring.close()
        self._repair_spool()

    def _record_shm_failure(self) -> None:
        """Trip the shm breaker and drop the ring (demote to pickle)."""
        self._shm_breaker.record_failure()
        with self._lock:
            ring, self._ring = self._ring, None
        if ring is not None:
            ring.close()

    def map(self, fn: Callable, jobs: Iterable) -> list:
        """Apply ``fn`` to every job in worker processes, preserving order."""
        return self._pool.map(fn, jobs)

    def map_cached(self, jobs: Iterable, timeout: Optional[float] = None) -> list:
        """Rank cache-keyed shard jobs (built against published payloads).

        Jobs carry ``(searcher_id, shard_index, epoch, spool_path,
        shard_rng, queries, shard_k)``.  On the shared-memory transport the
        query matrix is written into a ring segment once — which assumes
        every job of one batch carries the *same* query matrix, as the
        sharded searcher's fan-out does; batches with per-job query arrays
        are detected and routed through the pickle path, which honors them.
        Workers write their top-k results back in place; the returned
        ``(indices, scores)`` pairs are then zero-copy views into that
        segment, valid until the ring slot is reused (``ring_depth``
        subsequent dispatches) — callers consume them immediately (the
        cross-shard merge copies).  The pickle transport (and the
        single-job in-process short cut, where no pipe is crossed) returns
        ordinary arrays.
        """
        return self.submit_cached(jobs, timeout=timeout)()

    def submit_cached(
        self, jobs: Iterable, timeout: Optional[float] = None
    ) -> Callable[..., list]:
        """Dispatch cache-keyed shard jobs, keeping the batch in flight.

        The non-blocking counterpart of :meth:`map_cached` and the primitive
        under the serving scheduler's multi-batch pipeline: the batch's
        queries are written (shm) and the per-shard jobs submitted to the
        workers, then a ``collect(timeout=None)`` callable is returned
        whose call blocks until every shard finished and yields the
        per-shard result list.  Up to :attr:`dispatch_depth` batches may be
        in flight at once, and collects must follow submit order (FIFO) —
        batch ``N + ring_depth`` rewrites batch ``N``'s ring slot, so ``N``
        must be collected (and its views consumed) first.

        **Deadlines and recovery.**  ``timeout`` (here, or passed to the
        collect, which wins) is the batch's total wall-clock budget.  The
        collect supervises the dispatch: a crashed worker, a hang past
        ``dispatch_timeout_s``, a corrupt spool entry or a lost shm segment
        triggers an in-place heal (pool restart / spool repair / transport
        demotion) and **one** replay of the idempotent jobs — bitwise
        identical to an undisturbed run — within the remaining budget.  A
        second failure (or an exhausted budget) raises
        :class:`~repro.exceptions.WorkerCrashError` /
        :class:`~repro.exceptions.ServingTimeoutError` /
        :class:`~repro.exceptions.SpoolIntegrityError`; the pool is healed
        behind the raise, so the *next* batch finds working workers.
        """
        job_list = list(jobs)
        policy = self.tenant_policy
        if policy is not None and job_list:
            # Serving traffic refreshes cold-tenancy LRU recency; the hook
            # is outside this executor's lock (policy lock orders first).
            policy.touch(job_list[0][0])
        default_timeout = timeout
        if len(job_list) <= 1:
            # No pipe is crossed for a single job; ranking in process also
            # populates the parent-resident cache (see evict()).
            results = [_rank_cached_shard_job(job) for job in job_list]

            def collect_ready(timeout: Optional[float] = None) -> list:
                return results

            return collect_ready
        if not self._supervisor.pool_allowed:
            return self._submit_cached_serial(job_list)
        self._fire_fault("dispatch")
        observed = self._supervisor.generation
        try:
            inner = self._dispatch_cached(job_list)
        except BrokenExecutor as exc:
            # The pool was already broken at submit time (a worker died
            # between batches).  Heal once and re-dispatch; a pool too
            # broken to accept work twice is a crash, not a retry loop.
            observed = self._supervisor.ensure_healed(observed)
            if not self._supervisor.pool_allowed:
                return self._submit_cached_serial(job_list)
            try:
                inner = self._dispatch_cached(job_list)
            except BrokenExecutor as exc2:
                raise WorkerCrashError(
                    "worker pool broke dispatching a batch, then again after a restart"
                ) from exc2

        def collect(timeout: Optional[float] = default_timeout) -> list:
            return self._collect_with_recovery(inner, job_list, observed, timeout)

        return collect

    def _submit_cached_serial(self, jobs: list) -> Callable[..., list]:
        """In-process serial execution: the last rung of the degradation ladder.

        Used while the supervisor has demoted the pool (restarts exceeded
        the budget).  Jobs run in the parent at collect time with the same
        worker function, so results stay bitwise identical — the service
        degrades in throughput, not in answers or availability.  One rung
        remains below serial: a corrupt spool entry is repaired (from the
        parent payload, else from the snapshot restore source on disk) and
        the batch replayed once before failing typed.
        """

        def collect(timeout: Optional[float] = None) -> list:
            try:
                return [_rank_cached_shard_job(job) for job in jobs]
            except SpoolIntegrityError:
                if self._repair_spool() == 0:
                    raise
                return [_rank_cached_shard_job(job) for job in jobs]

        return collect

    def _dispatch_cached(self, jobs: list) -> Callable[..., list]:
        """Submit one multi-job batch; returns a raw ``collect(timeout)``.

        The transport-selection core shared by first dispatches and
        recovery replays: shm when the breaker allows and the batch
        qualifies, pickle otherwise.  The returned collect translates pool
        failures into typed errors (see :func:`_await_futures`) but does
        not itself retry — recovery lives one layer up.
        """
        shared_queries = all(job[5] is jobs[0][5] for job in jobs[1:])
        if shared_queries and self.active_transport == "shm":
            with self._lock:
                if self._ring_inflight >= self.ring_depth:
                    raise ServingError(
                        f"shared-memory ring overcommitted: {self._ring_inflight} "
                        f"batches already in flight on {self.ring_depth} ring "
                        "slots; collect dispatched batches in FIFO order before "
                        "dispatching deeper, or raise ring_depth"
                    )
            try:
                segment, layout = self._acquire_batch_segment(jobs)
            except OSError:
                # Segment allocation failed (exhausted /dev/shm,
                # permissions): trip the breaker and fall through to the
                # pickle path.  Scoped to the segment operations on
                # purpose — a worker raising OSError (e.g. a reaped spool)
                # must propagate, not masquerade as a shared-memory
                # failure.
                self._record_shm_failure()
            else:
                self._fire_fault("segment", segment=segment)
                return self._submit_cached_shm(segment, layout, jobs)
        futures = self._pool.submit_all(_rank_cached_shard_job, jobs)

        def collect(timeout: Optional[float] = None) -> list:
            return _await_futures(futures, timeout, what="cached-rank batch")

        return collect

    def _acquire_batch_segment(self, jobs: list) -> Tuple[Any, _transport.ShardBatchLayout]:
        """A ring segment sized and loaded for one batch's queries/results."""
        layout = _transport.ShardBatchLayout(jobs[0][5], [job[6] for job in jobs])
        segment = self._ensure_ring().acquire(layout.total_bytes)
        layout.write_queries(segment)
        return segment, layout

    def _submit_cached_shm(
        self, segment: Any, layout: _transport.ShardBatchLayout, jobs: list
    ) -> Callable[..., list]:
        """Dispatch one batch through the shared-memory ring (in flight)."""
        shm_jobs = [
            (
                searcher_id,
                shard_index,
                epoch,
                path,
                shard_rng,
                segment.name,
                layout.queries.shape,
                layout.queries.dtype.str,
                layout.index_offsets[position],
                layout.score_offsets[position],
                shard_k,
            )
            for position, (
                searcher_id,
                shard_index,
                epoch,
                path,
                shard_rng,
                _queries,
                shard_k,
            ) in enumerate(jobs)
        ]
        futures = self._pool.submit_all(_rank_cached_shard_job_shm, shm_jobs)
        with self._lock:
            self._ring_inflight += 1
        released = threading.Event()

        def collect(timeout: Optional[float] = None) -> list:
            try:
                _await_futures(futures, timeout, what="shared-memory batch")
            finally:
                # The slot is charged once per dispatch; release exactly
                # once even if a worker raised or collect is retried.
                if not released.is_set():
                    released.set()
                    with self._lock:
                        self._ring_inflight = max(0, self._ring_inflight - 1)
            # A full shm round trip doubles as the breaker's health probe.
            self._shm_breaker.record_success()
            return [
                layout.result_views(segment, position) for position in range(len(jobs))
            ]

        return collect

    def _attempt_budget(self, deadline: Optional[float]) -> Optional[float]:
        """Per-attempt timeout: min(hang detector, remaining overall budget)."""
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        if self.dispatch_timeout_s is None:
            return remaining
        if remaining is None:
            return self.dispatch_timeout_s
        return min(self.dispatch_timeout_s, remaining)

    def _classify_and_heal(self, exc: BaseException, observed_generation: int) -> None:
        """Run the recovery matching one dispatch failure.

        * corrupt/missing spool entry → verify + republish the spool (the
          workers are alive; they raised cleanly),
        * a worker-side ``OSError`` (a lost shm segment: failed attach) →
          trip the shm breaker and drop the ring; the retry dispatches over
          pickle,
        * anything else (crash, hang, broken pool) → supervisor heal:
          terminate + respawn the pool, re-arm the ring, verify the spool.
        """
        if isinstance(exc, SpoolIntegrityError):
            self._repair_spool()
            return
        if isinstance(exc, OSError) and not isinstance(exc, ServingError):
            self._record_shm_failure()
            return
        self._supervisor.ensure_healed(observed_generation)

    def _collect_with_recovery(
        self,
        collect: Callable[..., list],
        jobs: list,
        observed_generation: int,
        timeout: Optional[float],
    ) -> list:
        """Await one dispatched batch, healing and replaying once on failure."""
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        self._fire_fault("collect")
        try:
            results = collect(timeout=self._attempt_budget(deadline))
        except (ServingTimeoutError, WorkerCrashError, SpoolIntegrityError, OSError) as exc:
            return self._retry_once(jobs, observed_generation, deadline, exc)
        self._supervisor.record_success()
        return results

    def _retry_once(
        self,
        jobs: list,
        observed_generation: int,
        deadline: Optional[float],
        exc: BaseException,
    ) -> list:
        """Heal, then replay the idempotent batch once within its budget."""
        self._classify_and_heal(exc, observed_generation)
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise ServingTimeoutError(
                "batch deadline exhausted before the retry on the healed "
                f"pool could run (first failure: {exc})"
            ) from exc
        if not self._supervisor.pool_allowed:
            # Serial fallback: bitwise identical, but NOT a pool success —
            # recording one here would lift the demotion that was just
            # imposed and send the next batch straight back to a pool that
            # dies faster than it heals.
            return [_rank_cached_shard_job(job) for job in jobs]
        generation = self._supervisor.generation
        try:
            retry_collect = self._dispatch_cached(jobs)
            results = retry_collect(timeout=remaining)
        except (ServingError, OSError, BrokenExecutor) as retry_exc:
            # Heal once more behind the raise so the NEXT batch finds a
            # working pool, then fail this one cleanly and typed.
            self._classify_and_heal(retry_exc, generation)
            if isinstance(retry_exc, BrokenExecutor):
                raise WorkerCrashError(
                    "worker pool broke again replaying a batch after a restart"
                ) from retry_exc
            if isinstance(retry_exc, OSError) and not isinstance(retry_exc, ServingError):
                raise WorkerCrashError(
                    f"batch replay failed again after recovery: {retry_exc}"
                ) from retry_exc
            raise
        self._supervisor.record_success()
        return results

    def evict(self, searcher_id: str, broadcast: bool = True) -> None:
        """Drop cached shards of one (closed) searcher from worker caches.

        The calling process's entries — populated when the <=1-job short
        cut ranked in-process — are dropped synchronously; with
        ``broadcast=True`` an eviction message is additionally submitted
        once per worker slot of the live pool (best effort, see
        :meth:`PersistentProcessPool.broadcast`).  Correctness never
        depends on eviction — epoch-keyed lookups already ignore stale
        entries — it keeps long-running shared pools from accumulating
        dead searchers' shards.
        """
        _evict_searcher_entries(searcher_id)
        with self._lock:
            # Snapshot-and-pop under the lock: a scheduler and a searcher
            # closing the same serving stack from different threads may both
            # reach here, and concurrent ``close()`` clears the table — a
            # key snapshotted by one caller can legitimately be gone by the
            # time it pops it.
            stale = [
                self._published.pop(key)
                for key in list(self._published)
                if key[0] == searcher_id
            ]
            for key in [key for key in self._payloads if key[0] == searcher_id]:
                del self._payloads[key]
            self._restore_sources.pop(searcher_id, None)
            self._append_seqs.pop(searcher_id, None)
        for path in stale:
            _transport.remove_spool_entry(path)
        if broadcast:
            self._pool.broadcast(_evict_searcher_entries, searcher_id)

    def close(self) -> None:
        """Shut workers down, unlink segments and drop the spool (idempotent).

        Safe to call more than once and from more than one owner — a
        serving scheduler tearing down its stack and a ``with`` block (or
        finalizer) closing the searcher both reach the shared executor, in
        either order.
        """
        self._pool.close()
        with self._lock:
            ring, self._ring = self._ring, None
            self._ring_inflight = 0
            self._published.clear()
            self._payloads.clear()
            self._restore_sources.clear()
            self._append_seqs.clear()
            finalizer, self._spool_finalizer = self._spool_finalizer, None
            self._spool_dir = None
        if ring is not None:
            ring.close()
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


register_shard_executor("processes", ProcessShardExecutor)

"""Persistent worker-process pools: the cross-process execution substrate.

CPython executes one interpreter thread at a time, so thread pools only help
where NumPy releases the GIL.  The Monte-Carlo experiment harnesses spend a
large share of their time in interpreter-bound code (episode bookkeeping,
RNG management, per-trial model construction), which threads cannot
parallelize — worker *processes* can.

:class:`PersistentProcessPool` wraps a lazily started
:class:`concurrent.futures.ProcessPoolExecutor` that stays warm across map
calls, so one experiment pays the worker start-up cost once rather than per
dispatch.  Two consumers build on it:

* :class:`ProcessShardExecutor` — the ``"processes"`` strategy on the
  :func:`~repro.core.sharding.register_shard_executor` seam, ranking the
  shards of one query batch in worker processes,
* :class:`~repro.runtime.trials.ParallelTrialRunner` — the Monte-Carlo
  trial/episode dispatcher used by the Fig. 7/8 sweeps.

Work functions and jobs must be picklable (module-level functions and
plain-data payloads); both consumers are structured that way, which is also
what guarantees workers see self-contained jobs and therefore produce
results bitwise identical to in-process execution.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional

from ..core.sharding import register_shard_executor
from ..utils.validation import check_int_in_range


def default_worker_count() -> int:
    """Worker count used when none is requested: the host CPU count."""
    return os.cpu_count() or 1


class PersistentProcessPool:
    """A process pool that starts lazily and stays warm across map calls.

    Parameters
    ----------
    num_workers:
        Worker-process count; defaults to the host CPU count.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is not None:
            num_workers = check_int_in_range(num_workers, "num_workers", minimum=1)
        self.num_workers = num_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def effective_workers(self) -> int:
        """Workers the pool runs with (requested count or the CPU count)."""
        return self.num_workers if self.num_workers is not None else default_worker_count()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.effective_workers)
        return self._pool

    def map(self, fn: Callable, jobs: Iterable, chunksize: int = 1) -> List:
        """Apply ``fn`` to every job in worker processes, preserving order.

        ``fn`` and every job must be picklable.  Zero or one job short-cuts
        to an in-process call — the results are identical either way because
        jobs are self-contained.
        """
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [fn(job) for job in jobs]
        return list(self._ensure_pool().map(fn, jobs, chunksize=max(1, chunksize)))

    def close(self) -> None:
        """Shut the worker processes down (the pool restarts on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessShardExecutor:
    """Rank shards in a persistent worker-process pool.

    The ``"processes"`` strategy of the shard-executor seam: every job —
    a ``(shard_engine, offset, rng, queries, k)`` tuple — is shipped to a
    worker, ranked there and the per-shard top-k results are returned to the
    merging thread.  Jobs are self-contained and the per-shard RNG streams
    are spawned before dispatch, so results are bitwise identical to the
    ``"serial"`` and ``"threads"`` strategies at any worker count.

    Shipping a programmed shard engine costs one pickle round-trip per shard
    per batch, so this strategy suits coarse batches or engines whose ranking
    is interpreter-bound; for pure-NumPy ranking the ``"threads"`` strategy
    is usually cheaper.  The pool itself persists across searches — the
    worker start-up cost is paid once per searcher, not per query batch.
    """

    name = "processes"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self._pool = PersistentProcessPool(num_workers=num_workers)
        self.num_workers = self._pool.num_workers

    def map(self, fn, jobs) -> list:
        """Apply ``fn`` to every job in worker processes, preserving order."""
        return self._pool.map(fn, jobs)

    def close(self) -> None:
        """Shut down the worker processes."""
        self._pool.close()


register_shard_executor("processes", ProcessShardExecutor)

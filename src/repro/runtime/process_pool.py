"""Persistent worker-process pools: the cross-process execution substrate.

CPython executes one interpreter thread at a time, so thread pools only help
where NumPy releases the GIL.  The Monte-Carlo experiment harnesses spend a
large share of their time in interpreter-bound code (episode bookkeeping,
RNG management, per-trial model construction), which threads cannot
parallelize — worker *processes* can.

:class:`PersistentProcessPool` wraps a lazily started
:class:`concurrent.futures.ProcessPoolExecutor` that stays warm across map
calls, so one experiment pays the worker start-up cost once rather than per
dispatch.  Two consumers build on it:

* :class:`ProcessShardExecutor` — the ``"processes"`` strategy on the
  :func:`~repro.core.sharding.register_shard_executor` seam, ranking the
  shards of one query batch in worker processes,
* :class:`~repro.runtime.trials.ParallelTrialRunner` — the Monte-Carlo
  trial/episode dispatcher used by the Fig. 7/8 sweeps.

Work functions and jobs must be picklable (module-level functions and
plain-data payloads); both consumers are structured that way, which is also
what guarantees workers see self-contained jobs and therefore produce
results bitwise identical to in-process execution.

**Worker-resident shard caching.**  Shipping a programmed shard engine on
every query batch throws away the amortization that makes in-memory CAM
search fast (arrays are programmed once and queried many times).  The
``"processes"`` shard executor therefore publishes each programmed shard to
a spool file **once per program epoch**; workers keep a process-global cache
keyed by ``(searcher_id, shard_index, program_epoch)`` and load a shard from
the spool only when the key misses — i.e. on first contact or after a
reprogram/append bumped the shard's epoch.  Steady-state query batches ship
only query payloads.  A worker can never serve stale state: every job
carries the current epoch, and an epoch mismatch forces a reload.

All pools support the context-manager protocol, ``close()`` is idempotent,
and a :func:`weakref.finalize`-based safety net shuts workers down at
garbage collection or interpreter exit when a caller forgets to close.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.sharding import register_shard_executor
from ..utils.validation import check_int_in_range


def default_worker_count() -> int:
    """Worker count used when none is requested: the host CPU count."""
    return os.cpu_count() or 1


class PersistentProcessPool:
    """A process pool that starts lazily and stays warm across map calls.

    Supports ``with`` blocks; :meth:`close` is idempotent and a finalizer
    shuts the workers down at garbage collection or interpreter exit if the
    owner never closed the pool explicitly.

    Parameters
    ----------
    num_workers:
        Worker-process count; defaults to the host CPU count.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is not None:
            num_workers = check_int_in_range(num_workers, "num_workers", minimum=1)
        self.num_workers = num_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    @property
    def effective_workers(self) -> int:
        """Workers the pool runs with (requested count or the CPU count)."""
        return self.num_workers if self.num_workers is not None else default_worker_count()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.effective_workers)
            self._pool = pool
            # Safety net: shut the workers down when the pool object is
            # garbage collected or the interpreter exits, even if the owner
            # forgot close(); close() triggers the same finalizer.
            self._finalizer = weakref.finalize(self, pool.shutdown, wait=True)
        return self._pool

    def map(self, fn: Callable, jobs: Iterable, chunksize: int = 1) -> List:
        """Apply ``fn`` to every job in worker processes, preserving order.

        ``fn`` and every job must be picklable.  Zero or one job short-cuts
        to an in-process call — the results are identical either way because
        jobs are self-contained.
        """
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [fn(job) for job in jobs]
        return list(self._ensure_pool().map(fn, jobs, chunksize=max(1, chunksize)))

    def close(self) -> None:
        """Shut the workers down (idempotent; the pool restarts on next use)."""
        finalizer, self._finalizer = self._finalizer, None
        self._pool = None
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "PersistentProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Worker-resident shard cache
# ----------------------------------------------------------------------
#: Process-global store of shard payloads resident in THIS worker process:
#: ``(searcher_id, shard_index) -> (program_epoch, shard_engine, index_map)``.
#: A worker serves a cached shard only when the job's epoch matches the
#: cached epoch, so reprogramming (which bumps the epoch) can never be
#: answered from stale state.
_WORKER_SHARD_CACHE: Dict[Tuple[str, int], Tuple[int, object, np.ndarray]] = {}


def worker_shard_cache_epochs() -> Dict[Tuple[str, int], int]:
    """Epochs of the shards resident in the calling process (introspection)."""
    return {key: entry[0] for key, entry in _WORKER_SHARD_CACHE.items()}


def _rank_cached_shard_job(job) -> Tuple[np.ndarray, np.ndarray]:
    """Rank one query batch on a worker-resident (or freshly loaded) shard.

    The job carries ``(searcher_id, shard_index, epoch, spool_path,
    shard_rng, queries, k)``.  On an epoch match the resident engine serves
    the batch without any deserialization; on a miss the published payload is
    loaded from the spool and replaces the cached entry in place.
    """
    searcher_id, shard_index, epoch, path, shard_rng, queries, k = job
    key = (searcher_id, shard_index)
    entry = _WORKER_SHARD_CACHE.get(key)
    if entry is None or entry[0] != epoch:
        with open(path, "rb") as fh:
            shard, index_map = pickle.load(fh)
        entry = (epoch, shard, index_map)
        _WORKER_SHARD_CACHE[key] = entry
    _, shard, index_map = entry
    shard_k = min(k, shard.num_entries)
    indices, scores = shard._rank_batch(queries, rng=shard_rng, k=shard_k)
    return index_map[indices.astype(np.int64, copy=False)], scores


class ProcessShardExecutor:
    """Rank shards in a persistent worker-process pool.

    The ``"processes"`` strategy of the shard-executor seam.  Programmed
    shards are published to a spool once per program epoch and cached
    worker-resident (see the module docstring), so steady-state query
    batches ship only query payloads; jobs and results stay bitwise
    identical to the ``"serial"`` and ``"threads"`` strategies at any worker
    count because per-shard RNG streams are spawned before dispatch and the
    ranked payloads are self-contained.

    Set ``shard_cache=False`` to fall back to shipping every programmed
    shard with every batch (the pre-caching behavior, kept as a measurable
    baseline).  The pool itself persists across searches — the worker
    start-up cost is paid once per searcher, not per query batch.
    """

    name = "processes"

    def __init__(self, num_workers: Optional[int] = None, shard_cache: bool = True) -> None:
        self._pool = PersistentProcessPool(num_workers=num_workers)
        self.num_workers = self._pool.num_workers
        self.shard_cache = bool(shard_cache)
        self._spool_dir: Optional[str] = None
        self._spool_finalizer: Optional[weakref.finalize] = None

    @property
    def supports_shard_cache(self) -> bool:
        """Whether the sharded searcher should dispatch cache-keyed jobs."""
        return self.shard_cache

    def _ensure_spool(self) -> str:
        if self._spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-shard-spool-")
            self._spool_dir = spool_dir
            self._spool_finalizer = weakref.finalize(
                self, shutil.rmtree, spool_dir, ignore_errors=True
            )
        return self._spool_dir

    def publish_shard(self, searcher_id: str, shard_index: int, payload) -> str:
        """Write one shard's payload to the spool (atomically), return its path.

        Called by the sharded searcher once per ``(shard, program epoch)`` —
        not per batch.  The file is replaced atomically so a later epoch's
        publication can never be observed half-written.
        """
        path = os.path.join(
            self._ensure_spool(), f"{searcher_id}-shard{shard_index}.pkl"
        )
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
        return path

    def map(self, fn, jobs) -> list:
        """Apply ``fn`` to every job in worker processes, preserving order."""
        return self._pool.map(fn, jobs)

    def map_cached(self, jobs) -> list:
        """Rank cache-keyed shard jobs (built against published payloads)."""
        return self._pool.map(_rank_cached_shard_job, jobs)

    def close(self) -> None:
        """Shut workers down and drop the spool (idempotent)."""
        self._pool.close()
        finalizer, self._spool_finalizer = self._spool_finalizer, None
        self._spool_dir = None
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


register_shard_executor("processes", ProcessShardExecutor)

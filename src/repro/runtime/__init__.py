"""Parallel experiment runtime: persistent pools and Monte-Carlo dispatch.

The execution layer behind the statistical sweeps:

* :mod:`repro.runtime.process_pool` — a persistent worker-process pool and
  the ``"processes"`` shard-executor strategy (registered on import), with
  a worker-resident shard cache so programmed arrays ship to each worker
  once per program epoch instead of once per query batch,
* :mod:`repro.runtime.transport` — the zero-copy transport layer under the
  shard executor: a shared-memory ring for query/result batches and
  memory-mapped ``.npy`` spool bundles, with a transparent pickle fallback,
* :mod:`repro.runtime.trials` — the trial/episode dispatcher the Fig. 7/8
  harnesses fan out on, with a strict determinism contract (self-contained
  units, bitwise-identical results at any worker count),
* :mod:`repro.runtime.supervision` — the fault-tolerance policy objects:
  a circuit breaker for transport degradation and a pool supervisor that
  heals a dead/hung worker pool in place at a bounded restart rate
  (the full degradation ladder is ``shm → pickle → serial →
  disk-restore``, the last rung served by :mod:`repro.storage`
  snapshots),
* :mod:`repro.runtime.faults` — a deterministic, seeded fault-injection
  harness (kill-worker-mid-batch, corrupt/drop-spool, corrupt-segment,
  delay-collect, torn-journal-tail, corrupt-snapshot, drop-manifest)
  behind the chaos test suite and the fault-recovery / warm-restart
  benchmarks.
"""

from .faults import FaultInjector
from .process_pool import (
    PersistentProcessPool,
    ProcessShardExecutor,
    default_worker_count,
    worker_shard_cache_epochs,
)
from .supervision import CircuitBreaker, PoolSupervisor
from .transport import (
    SharedMemoryRing,
    load_spool_payload,
    shared_memory_available,
    verify_spool_entry,
    write_spool_bundle,
    write_spool_pickle,
)
from .trials import (
    ParallelTrialRunner,
    SerialTrialRunner,
    ThreadTrialRunner,
    TRIAL_RUNNERS,
    chunk_units,
    require_picklable,
    resolve_trial_runner,
)

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "PersistentProcessPool",
    "PoolSupervisor",
    "ProcessShardExecutor",
    "SharedMemoryRing",
    "default_worker_count",
    "load_spool_payload",
    "shared_memory_available",
    "verify_spool_entry",
    "worker_shard_cache_epochs",
    "write_spool_bundle",
    "write_spool_pickle",
    "ParallelTrialRunner",
    "SerialTrialRunner",
    "ThreadTrialRunner",
    "TRIAL_RUNNERS",
    "chunk_units",
    "require_picklable",
    "resolve_trial_runner",
]

"""Monte-Carlo trial dispatch: the parallel experiment runtime.

The paper's statistical results are sweeps of independent trials — the
Fig. 8 device-variation study alone runs ``tasks x sigmas x luts_per_sigma``
full program-and-search evaluations, and every one of them is embarrassingly
parallel.  This module provides the dispatcher the experiment harnesses run
on:

* :class:`SerialTrialRunner` — in-process, in-order execution (the
  reference path),
* :class:`ThreadTrialRunner` — a thread pool, useful when trials release
  the GIL,
* :class:`ParallelTrialRunner` — a persistent worker-process pool for the
  interpreter-bound Monte-Carlo workloads.

**Determinism contract.**  A trial unit must be self-contained: it carries
its own :class:`numpy.random.Generator` (spawned with
:func:`~repro.utils.rng.spawn_rngs` *before* dispatch, in a fixed order) and
the trial function must touch no shared mutable state.  Under that contract
the runner only changes *where* trials execute, never *what* they compute —
results are bitwise identical to the serial path at any worker count and any
chunking, which is what lets the Fig. 8 sweep fan out across cores without
perturbing a single data point.

Trial functions dispatched to ``"processes"`` must be picklable
(module-level functions; the experiment harnesses define theirs that way).
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.tiles import split_rows_evenly
from ..core.sharding import SerialShardExecutor, ThreadedShardExecutor
from ..exceptions import ConfigurationError
from ..utils.validation import check_int_in_range
from .process_pool import PersistentProcessPool


def chunk_units(units: Sequence[Any], num_chunks: int) -> Tuple[Sequence[Any], ...]:
    """Split ``units`` into at most ``num_chunks`` contiguous, ordered chunks.

    Chunk lengths differ by at most one and empty chunks are dropped, so the
    concatenation of the chunks is exactly ``units`` — chunking can never
    reorder (and therefore never change) trial results.
    """
    num_chunks = check_int_in_range(num_chunks, "num_chunks", minimum=1)
    return tuple(units[start:stop] for start, stop in split_rows_evenly(len(units), num_chunks))


def _run_trial_chunk(job: Tuple[Callable[[Any], Any], Sequence[Any]]) -> list:
    """Run one chunk of self-contained trial units (worker-side loop)."""
    fn, chunk = job
    return [fn(unit) for unit in chunk]


class SerialTrialRunner(SerialShardExecutor):
    """Run every trial in the calling thread, in order (the reference path).

    The executor interface (order-preserving ``map`` + ``close``) is shared
    with the shard layer, so the in-process strategies are the shard
    executors themselves.
    """


class ThreadTrialRunner(ThreadedShardExecutor):
    """Run trials concurrently in a lazily created, persistent thread pool."""

    _thread_name_prefix = "repro-trial"


class ParallelTrialRunner:
    """Dispatch Monte-Carlo trials to a persistent worker-process pool.

    Trials are grouped into contiguous, ordered chunks (amortizing the
    pickle round-trip over several trials) and each chunk runs as one job in
    a worker process.  Because units are self-contained and chunking
    preserves order, results are **bitwise identical to the serial runner at
    any worker count** — parallelism changes wall-clock time, nothing else.

    Parameters
    ----------
    num_workers:
        Worker-process count; defaults to the host CPU count.
    chunks_per_worker:
        Dispatch granularity: the unit list is split into
        ``num_workers * chunks_per_worker`` chunks, balancing scheduling
        slack against per-chunk shipping cost.
    """

    name = "processes"

    def __init__(self, num_workers: Optional[int] = None, chunks_per_worker: int = 2) -> None:
        self._pool = PersistentProcessPool(num_workers=num_workers)
        self.num_workers = self._pool.num_workers
        self.chunks_per_worker = check_int_in_range(
            chunks_per_worker, "chunks_per_worker", minimum=1
        )

    def map(self, fn: Callable, units: Iterable) -> List:
        """Apply ``fn`` to every unit in worker processes, preserving order."""
        unit_list = list(units)
        if len(unit_list) <= 1:
            return [fn(unit) for unit in unit_list]
        chunks = chunk_units(unit_list, self._pool.effective_workers * self.chunks_per_worker)
        jobs = [(fn, chunk) for chunk in chunks]
        results: List = []
        for chunk_result in self._pool.map(_run_trial_chunk, jobs):
            results.extend(chunk_result)
        return results

    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ParallelTrialRunner":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


#: Registry of trial-runner strategies by name (mirrors the shard-executor
#: names, so experiment knobs read the same at both layers).
TRIAL_RUNNERS: Dict[str, Callable[..., object]] = {
    "serial": SerialTrialRunner,
    "threads": ThreadTrialRunner,
    "processes": ParallelTrialRunner,
}


def resolve_trial_runner(executor: str = "serial", num_workers: Optional[int] = None) -> Any:
    """Build a trial runner from an executor name.

    ``executor`` is ``"serial"``, ``"threads"`` or ``"processes"``;
    ``num_workers`` bounds the pooled strategies.
    """
    try:
        factory = TRIAL_RUNNERS[executor.lower()]
    except (KeyError, AttributeError):
        raise ConfigurationError(
            f"unknown trial executor {executor!r}; available: "
            f"{', '.join(sorted(TRIAL_RUNNERS))}"
        ) from None
    return factory(num_workers=num_workers)


def require_picklable(obj: Any, what: str) -> None:
    """Raise a helpful error when ``obj`` cannot be shipped to a worker.

    Process-parallel dispatch pickles trial payloads; lambdas and closures
    cannot cross the process boundary.  Callers use this to fail fast with
    an actionable message instead of a bare ``PicklingError`` mid-sweep.
    """
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ConfigurationError(
            f"{what} must be picklable for process-parallel execution "
            f"(use a module-level function or functools.partial instead of a "
            f"lambda/closure): {exc}"
        ) from exc

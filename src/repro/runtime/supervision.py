"""Worker supervision: circuit breakers and pool heal/restart policy.

The serving runtime of PRs 3–7 is fast but brittle: a worker killed
mid-batch used to leave a :class:`~.transport.SharedMemoryRing` slot
permanently in flight, a ``BrokenProcessPool`` was fatal to every lane on
the scheduler, and a hung worker blocked its collect forever.  This module
holds the two small, deterministic policy objects that
:class:`~.process_pool.ProcessShardExecutor` composes into a self-healing
dispatch path:

* :class:`CircuitBreaker` — the transport-degradation policy.  The
  executor keeps one breaker per degradable resource (the shared-memory
  transport today); repeated failures open the breaker, which demotes the
  resource (``shm -> pickle``), and after a cool-down the breaker lets a
  probe dispatch through to test whether the resource recovered.
* :class:`PoolSupervisor` — the restart policy.  It owns the executor's
  *heal* callback (terminate the pool, re-arm the ring, verify and
  republish spool entries) and guards it with a generation counter so
  concurrent collects that observed the same dead pool heal it exactly
  once.  When restarts come too fast — ``max_restarts`` within
  ``restart_window_s`` — the supervisor demotes the executor to
  in-process serial execution and re-probes the pool after a cool-down.
  The full degradation ladder is ``shm -> pickle -> serial ->
  disk-restore``: below serial sits the storage tier, which republishes
  lost shard payloads from on-disk snapshots (counted via
  :meth:`PoolSupervisor.record_disk_restore`).

Both objects take an injectable monotonic ``clock`` so the chaos tests can
drive cool-down transitions deterministically, and both are thread-safe:
collects racing on a scheduler's pump thread and foreground lifecycle
calls may hit them concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Optional

from ..exceptions import ConfigurationError
from ..utils.validation import check_int_in_range

__all__ = ["CircuitBreaker", "PoolSupervisor"]


def _check_positive_float(value: float, name: str) -> float:
    value = float(value)
    if not value > 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


class CircuitBreaker:
    """Failure-counting breaker with a cool-down re-probe.

    Closed (healthy) until ``failure_threshold`` consecutive failures are
    recorded, then open: :meth:`allows` answers False and the owner routes
    around the resource.  Once ``cooldown_s`` has elapsed since the trip,
    :meth:`allows` answers True again — the *half-open* probe — and the
    next recorded outcome decides: a success closes the breaker, a failure
    re-opens it and restarts the cool-down.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker.  The shared-memory
        breaker uses 1: segment allocation failing once (an exhausted
        ``/dev/shm``) is reason enough to stop paying the attempt.
    cooldown_s:
        Seconds an open breaker waits before admitting a probe.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 1,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = check_int_in_range(
            failure_threshold, "failure_threshold", minimum=1
        )
        self.cooldown_s = _check_positive_float(cooldown_s, "cooldown_s")
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None

    @property
    def tripped(self) -> bool:
        """Whether the breaker is open (a cooled-down probe may still run)."""
        with self._lock:
            return self._opened_at is not None

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        with self._lock:
            return self._failures

    def allows(self) -> bool:
        """Whether the guarded resource may be used right now.

        True while closed; once open, False until ``cooldown_s`` elapses,
        then True again so one (or a few racing) probe dispatches can test
        recovery.  Read-only: probing does not mutate the breaker — the
        probe's :meth:`record_success`/:meth:`record_failure` does.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            return self._clock() - self._opened_at >= self.cooldown_s

    def record_failure(self) -> None:
        """Count one failure; trip (or re-trip) at the threshold."""
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()

    def record_success(self) -> None:
        """Close the breaker: the resource (or its probe) worked."""
        with self._lock:
            self._failures = 0
            self._opened_at = None


class PoolSupervisor:
    """Heal a worker pool in place, at a bounded restart rate.

    The supervisor owns a ``heal`` callback supplied by the executor —
    terminate the dead workers, reset the shared-memory ring, verify and
    republish spool entries — and two policies around it:

    * **Generation guard.**  Every dispatch snapshots :attr:`generation`;
      a collect that hits a dead pool calls :meth:`ensure_healed` with the
      snapshot.  The first such caller runs the heal and bumps the
      generation; concurrent callers that observed the same generation
      find it already bumped and return without healing again, so one
      crash costs one restart no matter how many batches were in flight.
    * **Restart budget.**  Restarts are timestamped and pruned to
      ``restart_window_s``; when ``max_restarts`` land inside the window
      the pool is *demoted* — :attr:`pool_allowed` answers False and the
      executor runs batches in-process serially (bitwise identical, just
      slow) instead of thrashing a pool that dies faster than it heals.
      After ``cooldown_s`` the next dispatch probes the pool again; a
      batch that completes calls :meth:`record_success`, which clears the
      restart history and lifts the demotion.

    One rung sits below even the serial demotion: when spool repair must
    reload a shard from its on-disk snapshot (no parent-resident payload —
    a warm-restarted host or an evicted cold tenant), the executor counts
    it here via :meth:`record_disk_restore`, making
    ``shm -> pickle -> serial -> disk-restore`` degradations observable
    end to end.
    """

    def __init__(
        self,
        heal: Callable[[], None],
        max_restarts: int = 5,
        restart_window_s: float = 30.0,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._heal = heal
        self.max_restarts = check_int_in_range(max_restarts, "max_restarts", minimum=1)
        self.restart_window_s = _check_positive_float(restart_window_s, "restart_window_s")
        self.cooldown_s = _check_positive_float(cooldown_s, "cooldown_s")
        self._clock = clock
        self._lock = threading.Lock()
        self._generation = 0
        self._total_restarts = 0
        self._total_disk_restores = 0
        self._total_stale_restores = 0
        self._restarts: Deque[float] = deque()
        self._demoted_at: Optional[float] = None

    @property
    def generation(self) -> int:
        """Pool generation: bumped by every heal.  Snapshot at dispatch."""
        with self._lock:
            return self._generation

    @property
    def total_restarts(self) -> int:
        """Heals performed over the supervisor's lifetime (monitoring)."""
        with self._lock:
            return self._total_restarts

    @property
    def total_disk_restores(self) -> int:
        """Shard payloads reloaded from snapshots during spool repair."""
        with self._lock:
            return self._total_disk_restores

    def record_disk_restore(self) -> None:
        """Count one restore-from-disk repair (the rung below serial)."""
        with self._lock:
            self._total_disk_restores += 1

    @property
    def total_stale_restores(self) -> int:
        """Disk restores refused because appends outran the snapshot.

        A snapshot generation whose ``applied_seq`` pre-dates the
        searcher's last acknowledged append would serve stale rows with
        valid checksums; the executor refuses it and the batch fails
        typed instead.
        """
        with self._lock:
            return self._total_stale_restores

    def record_stale_restore(self) -> None:
        """Count one refused (stale-snapshot) restore-from-disk attempt."""
        with self._lock:
            self._total_stale_restores += 1

    @property
    def demoted(self) -> bool:
        """Whether the pool is currently demoted to serial execution."""
        with self._lock:
            return self._demoted_at is not None

    @property
    def pool_allowed(self) -> bool:
        """Whether dispatches may use the worker pool right now.

        False only while demoted and inside the cool-down; once
        ``cooldown_s`` elapses dispatches flow to the pool again as
        probes — their outcome (a heal, or :meth:`record_success`)
        decides whether the demotion re-arms or lifts.
        """
        with self._lock:
            if self._demoted_at is None:
                return True
            return self._clock() - self._demoted_at >= self.cooldown_s

    def ensure_healed(self, observed_generation: int) -> int:
        """Heal the pool unless someone already did; return the generation.

        ``observed_generation`` is the :attr:`generation` the caller
        snapshotted when it dispatched the batch that just failed.  If the
        current generation moved past it, a concurrent collect already
        healed the pool this batch dispatched into — the failure is
        explained and the caller just retries on the healed pool.
        """
        with self._lock:
            if self._generation != observed_generation:
                return self._generation
            now = self._clock()
            while self._restarts and now - self._restarts[0] > self.restart_window_s:
                self._restarts.popleft()
            self._restarts.append(now)
            self._total_restarts += 1
            self._generation += 1
            if len(self._restarts) >= self.max_restarts:
                self._demoted_at = now
            self._heal()
            return self._generation

    def record_success(self) -> None:
        """A batch completed on the pool: clear history, lift demotion."""
        with self._lock:
            self._restarts.clear()
            self._demoted_at = None

"""N-way K-shot episode sampling.

"For a N-way K-shot task, the network trains on N x K images for K classes
(N images per class)" (Sec. IV-C; the paper's wording swaps N and K — the
standard convention, used here, is N classes with K support images each).
An *episode* consists of a support set (N x K labeled embeddings written to
the memory) and a query set (unlabeled embeddings of the same N classes to
classify).  The paper evaluates 5-way/20-way and 1-shot/5-shot combinations
on Omniglot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_int_in_range
from ..datasets.omniglot import SyntheticEmbeddingSpace

#: The four task configurations evaluated in Fig. 7 (n_way, k_shot).
PAPER_FEWSHOT_TASKS = ((5, 1), (5, 5), (20, 1), (20, 5))


@dataclass(frozen=True)
class Episode:
    """One N-way K-shot episode.

    Attributes
    ----------
    support_embeddings / support_labels:
        The ``n_way * k_shot`` labeled examples written to the memory.
        Labels are the episode-local class indices ``0..n_way-1``.
    query_embeddings / query_labels:
        The examples to classify and their ground-truth episode-local labels.
    class_indices:
        The global (dataset-level) class index of each episode-local class.
    """

    support_embeddings: np.ndarray
    support_labels: np.ndarray
    query_embeddings: np.ndarray
    query_labels: np.ndarray
    class_indices: np.ndarray

    @property
    def n_way(self) -> int:
        """Number of classes in the episode."""
        return int(self.class_indices.shape[0])

    @property
    def k_shot(self) -> int:
        """Number of support examples per class."""
        return int(self.support_labels.shape[0] // self.n_way)

    @property
    def num_queries(self) -> int:
        """Total number of query examples."""
        return int(self.query_labels.shape[0])


class EpisodeSampler:
    """Samples N-way K-shot episodes from a synthetic embedding space.

    Parameters
    ----------
    space:
        Embedding space providing ``num_classes`` and ``sample``.
    n_way:
        Number of classes per episode (5 or 20 in the paper).
    k_shot:
        Number of support embeddings per class (1 or 5 in the paper).
    queries_per_class:
        Number of query embeddings per class in each episode.
    """

    def __init__(
        self,
        space: SyntheticEmbeddingSpace,
        n_way: int,
        k_shot: int,
        queries_per_class: int = 5,
    ) -> None:
        self.space = space
        self.n_way = check_int_in_range(n_way, "n_way", minimum=2)
        self.k_shot = check_int_in_range(k_shot, "k_shot", minimum=1)
        self.queries_per_class = check_int_in_range(
            queries_per_class, "queries_per_class", minimum=1
        )
        if self.n_way > space.num_classes:
            raise DatasetError(
                f"n_way ({self.n_way}) cannot exceed the number of classes "
                f"({space.num_classes})"
            )

    def sample_episode(self, rng: SeedLike = None) -> Episode:
        """Draw one episode with fresh class and embedding samples."""
        generator = ensure_rng(rng)
        class_indices = generator.choice(self.space.num_classes, size=self.n_way, replace=False)

        support_embeddings, support_global = self.space.sample(
            class_indices, self.k_shot, rng=generator
        )
        query_embeddings, query_global = self.space.sample(
            class_indices, self.queries_per_class, rng=generator
        )

        # Map global class indices to episode-local labels 0..n_way-1.
        global_to_local = {int(g): local for local, g in enumerate(class_indices)}
        support_labels = np.array([global_to_local[int(g)] for g in support_global])
        query_labels = np.array([global_to_local[int(g)] for g in query_global])

        # Shuffle the query order so per-class blocks do not leak ordering
        # information to any stateful consumer.
        permutation = generator.permutation(query_labels.shape[0])
        return Episode(
            support_embeddings=support_embeddings,
            support_labels=support_labels,
            query_embeddings=query_embeddings[permutation],
            query_labels=query_labels[permutation],
            class_indices=np.asarray(class_indices, dtype=np.int64),
        )

    def episodes(self, count: int, rng: SeedLike = None) -> Iterator[Episode]:
        """Yield ``count`` independent episodes."""
        count = check_int_in_range(count, "count", minimum=1)
        generator = ensure_rng(rng)
        for _ in range(count):
            yield self.sample_episode(rng=generator)

"""Few-shot learning evaluation harness (the pipeline behind Fig. 7 and 8).

For each episode the support embeddings are written to the MANN memory
(which programs the CAM, a one-time cost) and the full query batch is
classified in one vectorized nearest-neighbor search; the episode accuracy
is the fraction of correctly labeled queries and the task accuracy is the
mean over episodes.  The harness is agnostic to the memory's searcher —
factories resolve engines through the backend registry of
:mod:`repro.core.search` — so the same episodes evaluate the
cosine/Euclidean software baselines, the TCAM+LSH baseline and the 2-/3-bit
MCAMs — exactly the comparison of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from ..exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng, spawn_rngs
from ..utils.stats import SummaryStatistics, accuracy, summarize
from ..utils.validation import check_int_in_range
from ..core.search import make_searcher
from ..datasets.omniglot import SyntheticEmbeddingSpace
from .episodes import Episode, EpisodeSampler
from .memory import MANNMemory, SearcherFactory


@dataclass(frozen=True)
class FewShotResult:
    """Accuracy of one method on one N-way K-shot task.

    Attributes
    ----------
    method:
        Name of the evaluated search method.
    n_way / k_shot:
        Task configuration.
    statistics:
        Episode-accuracy statistics (mean accuracy is
        ``statistics.mean``).
    """

    method: str
    n_way: int
    k_shot: int
    statistics: SummaryStatistics

    @property
    def accuracy(self) -> float:
        """Mean episode accuracy (fraction in [0, 1])."""
        return self.statistics.mean

    @property
    def accuracy_percent(self) -> float:
        """Mean episode accuracy in percent, as reported in the paper."""
        return 100.0 * self.statistics.mean

    @property
    def task_name(self) -> str:
        """Human-readable task name, e.g. ``"5-way 1-shot"``."""
        return f"{self.n_way}-way {self.k_shot}-shot"


class FewShotEvaluator:
    """Runs N-way K-shot episodes against a pluggable memory searcher.

    Parameters
    ----------
    space:
        The embedding space episodes are drawn from.
    n_way / k_shot:
        Task configuration.
    num_episodes:
        Number of episodes to average over.
    queries_per_class:
        Query embeddings per class in each episode.
    """

    def __init__(
        self,
        space: SyntheticEmbeddingSpace,
        n_way: int,
        k_shot: int,
        num_episodes: int = 100,
        queries_per_class: int = 5,
    ) -> None:
        self.space = space
        self.sampler = EpisodeSampler(
            space, n_way=n_way, k_shot=k_shot, queries_per_class=queries_per_class
        )
        self.num_episodes = check_int_in_range(num_episodes, "num_episodes", minimum=1)

    def evaluate(
        self,
        searcher_factory: SearcherFactory,
        method_name: str = "custom",
        rng: SeedLike = None,
    ) -> FewShotResult:
        """Evaluate one method over ``num_episodes`` fresh episodes.

        One searcher is allocated up front and reprogrammed per episode (the
        CAM workload: rewrite the support rows, then stream the episode's
        whole query block through one batched search).  Episode sampling and
        classification use independent streams (as :meth:`compare` always
        has), so engines that draw randomness during search — stochastic
        sensing, sharded execution — cannot perturb which episodes are
        evaluated.
        """
        generator = ensure_rng(rng)
        memory = MANNMemory(searcher_factory=searcher_factory, reuse_searcher=True)
        episode_rngs = spawn_rngs(generator, self.num_episodes)
        episode_accuracies = []
        try:
            for episode, episode_rng in zip(
                self.sampler.episodes(self.num_episodes, rng=generator), episode_rngs
            ):
                episode_accuracies.append(
                    run_episode(episode, searcher_factory, rng=episode_rng, memory=memory)
                )
        finally:
            # Deterministically release searcher resources (e.g. a sharded
            # thread pool) instead of waiting for garbage collection.
            memory.clear()
        return FewShotResult(
            method=method_name,
            n_way=self.sampler.n_way,
            k_shot=self.sampler.k_shot,
            statistics=summarize(episode_accuracies),
        )

    def compare(
        self,
        factories: Dict[str, SearcherFactory],
        rng: SeedLike = None,
    ) -> Dict[str, FewShotResult]:
        """Evaluate several methods on *identical* episodes.

        All methods see exactly the same support/query embeddings in every
        episode, which is the comparison the paper makes: the only moving
        part is the distance function / search hardware.  Each method keeps
        one searcher allocation for the whole run.
        """
        if not factories:
            raise ConfigurationError("factories must contain at least one method")
        generator = ensure_rng(rng)
        per_method_accuracies: Dict[str, list] = {name: [] for name in factories}
        memories = {
            name: MANNMemory(searcher_factory=factory, reuse_searcher=True)
            for name, factory in factories.items()
        }
        # One independent stream per episode for the stochastic engines so
        # adding/removing a method does not change the other methods' results.
        episode_rngs = spawn_rngs(generator, self.num_episodes)
        try:
            for episode, episode_rng in zip(
                self.sampler.episodes(self.num_episodes, rng=generator), episode_rngs
            ):
                for name, factory in factories.items():
                    per_method_accuracies[name].append(
                        run_episode(episode, factory, rng=episode_rng, memory=memories[name])
                    )
        finally:
            for memory in memories.values():
                memory.clear()
        return {
            name: FewShotResult(
                method=name,
                n_way=self.sampler.n_way,
                k_shot=self.sampler.k_shot,
                statistics=summarize(values),
            )
            for name, values in per_method_accuracies.items()
        }


def run_episode(
    episode: Episode,
    searcher_factory: SearcherFactory,
    rng: SeedLike = None,
    memory: Optional[MANNMemory] = None,
) -> float:
    """Accuracy of one method on one episode.

    The support set programs the memory once; the episode's entire query
    batch then rides one vectorized ``predict_batch`` search.  Passing a
    ``memory`` (e.g. one with ``reuse_searcher=True``) lets callers serve
    many episodes from a single searcher allocation; otherwise a fresh
    single-episode memory is built from ``searcher_factory``.
    """
    if memory is None:
        memory = MANNMemory(searcher_factory=searcher_factory)
    memory.write(episode.support_embeddings, episode.support_labels)
    predictions = memory.classify(episode.query_embeddings, rng=rng)
    return accuracy(predictions, episode.query_labels)


def default_method_factories(
    embedding_dim: int,
    lsh_bits: Optional[int] = None,
    seed: SeedLike = None,
    shards: Optional[int] = None,
    max_rows_per_array: Optional[int] = None,
    executor: str = "serial",
) -> Dict[str, SearcherFactory]:
    """The five methods compared in Fig. 7, as searcher factories.

    Parameters
    ----------
    embedding_dim:
        Embedding width; also the CAM word length and the iso-word-length
        LSH signature size.
    lsh_bits:
        Override for the LSH signature length (e.g. 512 to reproduce the
        original TCAM+LSH configuration of the paper's footnote 1).
    seed:
        Seed for the stochastic engines (LSH hyperplanes).
    shards / max_rows_per_array / executor:
        Optional sharded-execution configuration forwarded to
        :func:`~repro.core.search.make_searcher`; when either ``shards`` or
        ``max_rows_per_array`` is given every method partitions its support
        set across fixed-capacity arrays (results stay identical — sharding
        is exact).
    """
    generator = ensure_rng(seed)
    seeds = generator.integers(0, 2**31 - 1, size=8)
    signature_bits = lsh_bits if lsh_bits is not None else embedding_dim
    sharding = {
        "shards": shards,
        "max_rows_per_array": max_rows_per_array,
        "executor": executor,
    }
    return {
        "cosine": lambda: make_searcher("cosine", embedding_dim, **sharding),
        "euclidean": lambda: make_searcher("euclidean", embedding_dim, **sharding),
        "mcam-3bit": lambda: make_searcher(
            "mcam-3bit", embedding_dim, seed=int(seeds[0]), **sharding
        ),
        "mcam-2bit": lambda: make_searcher(
            "mcam-2bit", embedding_dim, seed=int(seeds[1]), **sharding
        ),
        "tcam-lsh": lambda: make_searcher(
            "tcam-lsh", embedding_dim, lsh_bits=signature_bits, seed=int(seeds[2]), **sharding
        ),
    }

"""Few-shot learning evaluation harness (the pipeline behind Fig. 7 and 8).

For each episode the support embeddings are written to the MANN memory
(which programs the CAM, a one-time cost) and the full query batch is
classified in one vectorized nearest-neighbor search; the episode accuracy
is the fraction of correctly labeled queries and the task accuracy is the
mean over episodes.  The harness is agnostic to the memory's searcher —
factories resolve engines through the backend registry of
:mod:`repro.core.search` — so the same episodes evaluate the
cosine/Euclidean software baselines, the TCAM+LSH baseline and the 2-/3-bit
MCAMs — exactly the comparison of Fig. 7.
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional


from ..exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng, spawn_rngs
from ..utils.stats import SummaryStatistics, accuracy, summarize
from ..utils.validation import check_int_in_range
from ..core.search import make_searcher
from ..datasets.omniglot import SyntheticEmbeddingSpace
from ..runtime import default_worker_count, require_picklable, resolve_trial_runner
from ..runtime.trials import ParallelTrialRunner, SerialTrialRunner, chunk_units
from .episodes import Episode, EpisodeSampler
from .memory import MANNMemory, SearcherFactory


@dataclass(frozen=True)
class FewShotResult:
    """Accuracy of one method on one N-way K-shot task.

    Attributes
    ----------
    method:
        Name of the evaluated search method.
    n_way / k_shot:
        Task configuration.
    statistics:
        Episode-accuracy statistics (mean accuracy is
        ``statistics.mean``).
    """

    method: str
    n_way: int
    k_shot: int
    statistics: SummaryStatistics

    @property
    def accuracy(self) -> float:
        """Mean episode accuracy (fraction in [0, 1])."""
        return self.statistics.mean

    @property
    def accuracy_percent(self) -> float:
        """Mean episode accuracy in percent, as reported in the paper."""
        return 100.0 * self.statistics.mean

    @property
    def task_name(self) -> str:
        """Human-readable task name, e.g. ``"5-way 1-shot"``."""
        return f"{self.n_way}-way {self.k_shot}-shot"


class FewShotEvaluator:
    """Runs N-way K-shot episodes against a pluggable memory searcher.

    Parameters
    ----------
    space:
        The embedding space episodes are drawn from.
    n_way / k_shot:
        Task configuration.
    num_episodes:
        Number of episodes to average over.
    queries_per_class:
        Query embeddings per class in each episode.
    executor:
        Episode-dispatch strategy: ``"serial"`` (one searcher allocation,
        episodes in order — the reference path), ``"threads"`` or
        ``"processes"`` (episodes chunked across a persistent worker pool,
        one searcher allocation per chunk).  Episodes and their RNG streams
        are sampled up front in the serial order, so parallel dispatch
        evaluates *identical* episodes; accuracies match the serial path for
        engines whose per-episode results do not depend on programming
        history — the LUT-mode MCAM, the seeded TCAM+LSH engine, the
        software baselines, and device-mode MCAMs using row-keyed
        ``program_seed`` programming.  Process dispatch additionally needs a
        picklable ``searcher_factory`` (e.g. a :func:`functools.partial`
        around ``make_searcher``, which :func:`default_method_factories`
        returns).
    num_workers:
        Worker bound for the pooled strategies; defaults to the CPU count.
    """

    def __init__(
        self,
        space: SyntheticEmbeddingSpace,
        n_way: int,
        k_shot: int,
        num_episodes: int = 100,
        queries_per_class: int = 5,
        executor: str = "serial",
        num_workers: Optional[int] = None,
    ) -> None:
        self.space = space
        self.sampler = EpisodeSampler(
            space, n_way=n_way, k_shot=k_shot, queries_per_class=queries_per_class
        )
        self.num_episodes = check_int_in_range(num_episodes, "num_episodes", minimum=1)
        self.executor = executor
        self.num_workers = num_workers
        # One persistent runner for the evaluator's lifetime: pooled workers
        # stay warm across evaluate()/compare() calls (pools start lazily, so
        # an unused evaluator costs nothing).  Construction also validates
        # the executor name eagerly.
        self._runner = resolve_trial_runner(executor, num_workers=num_workers)

    def close(self) -> None:
        """Release the evaluator's trial runner (idempotent).

        Pooled runners restart lazily if the evaluator is used again; a
        finalizer also shuts worker pools down at garbage collection or
        interpreter exit, so forgetting close() cannot leak processes.
        """
        self._runner.close()

    def __enter__(self) -> "FewShotEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _sampled_episodes(self, generator) -> List[Episode]:
        """Draw the run's episodes up front, in the canonical serial order."""
        return list(self.sampler.episodes(self.num_episodes, rng=generator))

    def _episode_jobs(self, factory: SearcherFactory, episodes, episode_rngs, runner):
        """Chunked ``(factory, episodes, rngs)`` jobs for pooled dispatch."""
        if isinstance(runner, ParallelTrialRunner):
            # Only process dispatch ships jobs across an interpreter
            # boundary; thread dispatch runs closures and lambdas fine.
            require_picklable(factory, "searcher_factory")
        workers = runner.num_workers or default_worker_count()
        num_chunks = workers * 2
        episode_chunks = chunk_units(list(episodes), num_chunks)
        rng_chunks = chunk_units(list(episode_rngs), num_chunks)
        return [
            (factory, chunk, rngs) for chunk, rngs in zip(episode_chunks, rng_chunks)
        ]

    def evaluate(
        self,
        searcher_factory: SearcherFactory,
        method_name: str = "custom",
        rng: SeedLike = None,
    ) -> FewShotResult:
        """Evaluate one method over ``num_episodes`` fresh episodes.

        One searcher is allocated up front and delta-reprogrammed per episode
        (the CAM workload: rewrite the support rows, then stream the
        episode's whole query block through one batched search); pooled
        executors keep one searcher per worker chunk instead.  Episode
        sampling and classification use independent streams (as
        :meth:`compare` always has), so engines that draw randomness during
        search — stochastic sensing, sharded execution — cannot perturb
        which episodes are evaluated.
        """
        generator = ensure_rng(rng)
        episode_rngs = spawn_rngs(generator, self.num_episodes)
        episodes = self._sampled_episodes(generator)
        runner = self._runner
        if isinstance(runner, SerialTrialRunner):
            episode_accuracies = _run_episode_chunk(
                (searcher_factory, episodes, episode_rngs)
            )
        else:
            jobs = self._episode_jobs(searcher_factory, episodes, episode_rngs, runner)
            episode_accuracies = []
            for chunk_accuracies in runner.map(_run_episode_chunk, jobs):
                episode_accuracies.extend(chunk_accuracies)
        return FewShotResult(
            method=method_name,
            n_way=self.sampler.n_way,
            k_shot=self.sampler.k_shot,
            statistics=summarize(episode_accuracies),
        )

    def compare(
        self,
        factories: Dict[str, SearcherFactory],
        rng: SeedLike = None,
    ) -> Dict[str, FewShotResult]:
        """Evaluate several methods on *identical* episodes.

        All methods see exactly the same support/query embeddings in every
        episode, which is the comparison the paper makes: the only moving
        part is the distance function / search hardware.  Each method keeps
        one searcher allocation for the whole run (serial) or per worker
        chunk (pooled executors, which dispatch every ``method x chunk``
        pair independently; stochastic-sensing engines then consume
        per-method copies of the episode streams instead of the serial
        path's shared stream — the deterministic paper methods are
        unaffected).
        """
        if not factories:
            raise ConfigurationError("factories must contain at least one method")
        generator = ensure_rng(rng)
        # One independent stream per episode for the stochastic engines so
        # adding/removing a method does not change the other methods' results.
        episode_rngs = spawn_rngs(generator, self.num_episodes)
        episodes = self._sampled_episodes(generator)
        runner = self._runner
        per_method_accuracies: Dict[str, list] = {}
        if isinstance(runner, SerialTrialRunner):
            per_method_accuracies = {name: [] for name in factories}
            memories = {
                name: MANNMemory(searcher_factory=factory, reuse_searcher=True)
                for name, factory in factories.items()
            }
            try:
                for episode, episode_rng in zip(episodes, episode_rngs):
                    for name, factory in factories.items():
                        per_method_accuracies[name].append(
                            run_episode(
                                episode, factory, rng=episode_rng, memory=memories[name]
                            )
                        )
            finally:
                for memory in memories.values():
                    memory.clear()
        else:
            jobs = []
            spans = []
            for name, factory in factories.items():
                # Every method gets its own *copies* of the episode
                # streams: process dispatch copies implicitly by
                # pickling, but thread dispatch would otherwise share
                # (and concurrently mutate) the Generator objects across
                # method jobs.
                method_rngs = deepcopy(episode_rngs)
                method_jobs = self._episode_jobs(factory, episodes, method_rngs, runner)
                spans.append((name, len(method_jobs)))
                jobs.extend(method_jobs)
            results = runner.map(_run_episode_chunk, jobs)
            cursor = 0
            for name, count in spans:
                accuracies: list = []
                for chunk_accuracies in results[cursor : cursor + count]:
                    accuracies.extend(chunk_accuracies)
                per_method_accuracies[name] = accuracies
                cursor += count
        return {
            name: FewShotResult(
                method=name,
                n_way=self.sampler.n_way,
                k_shot=self.sampler.k_shot,
                statistics=summarize(values),
            )
            for name, values in per_method_accuracies.items()
        }


def _run_episode_chunk(job) -> List[float]:
    """Run one ordered chunk of episodes on one searcher allocation.

    Module-level so pooled executors can ship it to worker processes; the
    job carries ``(searcher_factory, episodes, episode_rngs)``.  One
    :class:`MANNMemory` with ``reuse_searcher=True`` serves the whole chunk,
    so every refit inside a worker rides the arrays' delta-reprogramming
    path.
    """
    factory, episodes, episode_rngs = job
    memory = MANNMemory(searcher_factory=factory, reuse_searcher=True)
    try:
        return [
            run_episode(episode, factory, rng=episode_rng, memory=memory)
            for episode, episode_rng in zip(episodes, episode_rngs)
        ]
    finally:
        # Deterministically release searcher resources (e.g. a sharded
        # thread pool) instead of waiting for garbage collection.
        memory.clear()


def run_episode(
    episode: Episode,
    searcher_factory: SearcherFactory,
    rng: SeedLike = None,
    memory: Optional[MANNMemory] = None,
) -> float:
    """Accuracy of one method on one episode.

    The support set programs the memory once; the episode's entire query
    batch then rides one vectorized ``predict_batch`` search.  Passing a
    ``memory`` (e.g. one with ``reuse_searcher=True``) lets callers serve
    many episodes from a single searcher allocation; otherwise a fresh
    single-episode memory is built from ``searcher_factory``.
    """
    if memory is None:
        memory = MANNMemory(searcher_factory=searcher_factory)
    memory.write(episode.support_embeddings, episode.support_labels)
    predictions = memory.classify(episode.query_embeddings, rng=rng)
    return accuracy(predictions, episode.query_labels)


def default_method_factories(
    embedding_dim: int,
    lsh_bits: Optional[int] = None,
    seed: SeedLike = None,
    shards: Optional[int] = None,
    max_rows_per_array: Optional[int] = None,
    executor: str = "serial",
    kernel: Optional[str] = None,
) -> Dict[str, SearcherFactory]:
    """The five methods compared in Fig. 7, as searcher factories.

    Parameters
    ----------
    embedding_dim:
        Embedding width; also the CAM word length and the iso-word-length
        LSH signature size.
    lsh_bits:
        Override for the LSH signature length (e.g. 512 to reproduce the
        original TCAM+LSH configuration of the paper's footnote 1).
    seed:
        Seed for the stochastic engines (LSH hyperplanes).
    shards / max_rows_per_array / executor:
        Optional sharded-execution configuration forwarded to
        :func:`~repro.core.search.make_searcher`; when either ``shards`` or
        ``max_rows_per_array`` is given every method partitions its support
        set across fixed-capacity arrays (results stay identical — sharding
        is exact).
    kernel:
        Optional MCAM conductance-kernel override (``"fused"``,
        ``"blocked"`` or ``"dense"``), forwarded to the MCAM methods; the
        default lets the shape-adaptive autotuner pick per episode shape.
        Kernel choice never changes accuracies — it only moves wall time.
    """
    generator = ensure_rng(seed)
    seeds = generator.integers(0, 2**31 - 1, size=8)
    signature_bits = lsh_bits if lsh_bits is not None else embedding_dim
    sharding = {
        "shards": shards,
        "max_rows_per_array": max_rows_per_array,
        "executor": executor,
    }
    # functools.partial around the module-level make_searcher (rather than a
    # lambda) keeps every factory picklable, so the same method table drives
    # both in-process evaluation and the process-parallel episode runtime.
    return {
        "cosine": partial(make_searcher, "cosine", embedding_dim, **sharding),
        "euclidean": partial(make_searcher, "euclidean", embedding_dim, **sharding),
        "mcam-3bit": partial(
            make_searcher,
            "mcam-3bit",
            embedding_dim,
            seed=int(seeds[0]),
            kernel=kernel,
            **sharding,
        ),
        "mcam-2bit": partial(
            make_searcher,
            "mcam-2bit",
            embedding_dim,
            seed=int(seeds[1]),
            kernel=kernel,
            **sharding,
        ),
        "tcam-lsh": partial(
            make_searcher,
            "tcam-lsh",
            embedding_dim,
            lsh_bits=signature_bits,
            seed=int(seeds[2]),
            **sharding,
        ),
    }

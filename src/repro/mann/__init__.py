"""Memory-augmented neural network (MANN) components for few-shot learning.

* :mod:`~repro.mann.feature_extractor` — the CNN front-end's architecture
  (MAC counts for the energy model) and its synthetic stand-in,
* :mod:`~repro.mann.memory` — the key-value memory answering queries through
  a pluggable nearest-neighbor searcher,
* :mod:`~repro.mann.episodes` — N-way K-shot episode sampling,
* :mod:`~repro.mann.fewshot` — the evaluation harness behind Fig. 7 and 8.
"""

from .episodes import PAPER_FEWSHOT_TASKS, Episode, EpisodeSampler
from .feature_extractor import (
    ConvLayerSpec,
    ConvNetSpec,
    DenseLayerSpec,
    OMNIGLOT_IMAGE_SIZE,
    SyntheticFeatureExtractor,
    paper_convnet,
)
from .fewshot import (
    FewShotEvaluator,
    FewShotResult,
    default_method_factories,
    run_episode,
)
from .memory import MANNMemory, SearcherFactory

__all__ = [
    "PAPER_FEWSHOT_TASKS",
    "Episode",
    "EpisodeSampler",
    "ConvLayerSpec",
    "ConvNetSpec",
    "DenseLayerSpec",
    "OMNIGLOT_IMAGE_SIZE",
    "SyntheticFeatureExtractor",
    "paper_convnet",
    "FewShotEvaluator",
    "FewShotResult",
    "default_method_factories",
    "run_episode",
    "MANNMemory",
    "SearcherFactory",
]

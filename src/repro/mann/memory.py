"""Memory module of the memory-augmented neural network (MANN).

"MANNs are comprised of a neural network for feature extraction and a memory
module for storing and loading features ... The memory module holds the
features of trained classes which can be used to classify previously unseen
images" (Sec. IV-C).  The memory module here is deliberately small: it stores
support embeddings together with their labels and answers queries through a
pluggable nearest-neighbor searcher, which is precisely where the paper swaps
the GPU distance computation for the MCAM or the TCAM+LSH engine.

Two read-out policies are provided:

* ``"nearest"`` — the label of the single nearest stored entry (what a CAM
  returns natively and what the paper evaluates),
* ``"prototype"`` — class prototypes (per-class mean embeddings) are stored
  instead of the individual shots, the standard Prototypical-Networks-style
  variant; it is exposed so ablations can compare both options.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SearchError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_choice, check_feature_matrix
from ..core.search import NearestNeighborSearcher, SoftwareSearcher
from ..core.sharding import ShardedSearcher

#: Factory signature: called with no arguments, returns a fresh searcher.
SearcherFactory = Callable[[], NearestNeighborSearcher]


class MANNMemory:
    """Key-value memory answering class queries by nearest-neighbor search.

    Parameters
    ----------
    searcher_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.core.search.NearestNeighborSearcher`; called every
        time the memory is (re)written.  Defaults to the FP32 cosine
        software searcher.
    readout:
        ``"nearest"`` (store every support embedding) or ``"prototype"``
        (store per-class mean embeddings).
    reuse_searcher:
        When True, the factory is called once and subsequent writes refit
        the same searcher instead of building a fresh one — the episodic
        workload of the few-shot harness, where one physical CAM is simply
        reprogrammed per episode.
    shards / max_rows_per_array / executor:
        Optional sharded-execution configuration: when either ``shards`` or
        ``max_rows_per_array`` is given the memory's searcher becomes a
        :class:`~repro.core.sharding.ShardedSearcher` partitioning the
        support set across fixed-capacity arrays.
    """

    def __init__(
        self,
        searcher_factory: Optional[SearcherFactory] = None,
        readout: str = "nearest",
        reuse_searcher: bool = False,
        shards: Optional[int] = None,
        max_rows_per_array: Optional[int] = None,
        executor: str = "serial",
    ) -> None:
        if searcher_factory is None:
            searcher_factory = lambda: SoftwareSearcher(metric="cosine")  # noqa: E731
        if shards is not None or max_rows_per_array is not None:
            base_factory = searcher_factory
            searcher_factory = lambda: ShardedSearcher(  # noqa: E731
                base_factory,
                num_shards=shards,
                max_rows_per_array=max_rows_per_array,
                executor=executor,
            )
        elif executor != "serial":
            raise ConfigurationError(
                "executor applies only to sharded memories; pass shards= or "
                "max_rows_per_array= as well"
            )
        self.searcher_factory = searcher_factory
        self.readout = check_choice(readout, "readout", ("nearest", "prototype"))
        self.reuse_searcher = bool(reuse_searcher)
        self._searcher: Optional[NearestNeighborSearcher] = None
        self._num_entries = 0

    @property
    def is_written(self) -> bool:
        """Whether support data has been written to the memory."""
        return self._searcher is not None

    @property
    def num_entries(self) -> int:
        """Number of entries currently stored (shots or prototypes)."""
        return self._num_entries

    @property
    def searcher(self) -> NearestNeighborSearcher:
        """The underlying searcher (available once written)."""
        if self._searcher is None:
            raise SearchError("memory has not been written yet")
        return self._searcher

    def write(self, support_embeddings, support_labels: Sequence[int]) -> "MANNMemory":
        """Store the support set (one-time programming of the CAM).

        With the ``"prototype"`` read-out the per-class means are stored
        instead of the raw embeddings.
        """
        embeddings = check_feature_matrix(support_embeddings, "support_embeddings")
        labels = np.asarray(support_labels)
        if labels.ndim != 1 or labels.shape[0] != embeddings.shape[0]:
            raise ConfigurationError(
                f"support_labels must have one entry per embedding, got {labels.shape} "
                f"for {embeddings.shape[0]} embeddings"
            )
        if self.readout == "prototype":
            classes = np.unique(labels)
            prototypes = np.stack(
                [embeddings[labels == c].mean(axis=0) for c in classes]
            )
            embeddings, labels = prototypes, classes
        if self._searcher is None or not self.reuse_searcher:
            self._release_searcher()
            self._searcher = self.searcher_factory()
        self._searcher.fit(embeddings, labels)
        self._num_entries = embeddings.shape[0]
        return self

    def _release_searcher(self) -> None:
        """Free executor resources (e.g. a shard thread pool) before dropping."""
        close = getattr(self._searcher, "close", None)
        if close is not None:
            close()

    def classify(self, query_embeddings, rng: SeedLike = None) -> np.ndarray:
        """Label of the nearest stored entry for each query embedding.

        The whole query batch is classified in one vectorized search over
        the programmed memory, which is how a CAM serves an episode: program
        the support set once, then stream every query through it.
        """
        if self._searcher is None:
            raise SearchError("memory must be written before it can be queried")
        queries = check_feature_matrix(query_embeddings, "query_embeddings")
        return self._searcher.predict_batch(queries, rng=ensure_rng(rng))

    def clear(self) -> None:
        """Forget the stored support set."""
        self._release_searcher()
        self._searcher = None
        self._num_entries = 0

"""The MANN's CNN front-end: architecture description and synthetic stand-in.

The memory-augmented neural network of Sec. IV-C uses the SimpleShot-style
backbone described in the paper: "two 3x3 convolution layers with 64 filters,
a max-pooling layer, two 3x3 convolution layers with 128 filters, and a
max-pooling layer followed by two 128 and 64 node fully-connected layers".
Two things from that network matter to this library:

* its *compute cost* — the end-to-end energy/latency comparison against the
  Jetson TX2 GPU is dominated by the CNN, so the energy model needs MAC and
  parameter counts (:class:`ConvNetSpec` / :func:`paper_convnet`), and
* its *output* — 64-dimensional embeddings.  Since no deep-learning
  framework is available offline, :class:`SyntheticFeatureExtractor` wraps a
  :class:`~repro.datasets.omniglot.SyntheticEmbeddingSpace` and optionally
  adds extraction noise, standing in for a trained network applied to query
  images (see the substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_int_in_range, check_non_negative
from ..datasets.omniglot import SyntheticEmbeddingSpace

#: Omniglot images are 28x28 after the standard resize used by MANN papers.
OMNIGLOT_IMAGE_SIZE = 28


@dataclass(frozen=True)
class ConvLayerSpec:
    """One convolution layer (square kernels, same padding)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    input_size: int

    def __post_init__(self) -> None:
        for name in ("in_channels", "out_channels", "kernel_size", "input_size"):
            check_int_in_range(getattr(self, name), name, minimum=1)

    @property
    def output_size(self) -> int:
        """Spatial output size (same padding, stride 1)."""
        return self.input_size

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one forward pass."""
        return (
            self.out_channels
            * self.output_size
            * self.output_size
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )

    @property
    def parameters(self) -> int:
        """Weight + bias count."""
        return self.out_channels * (self.in_channels * self.kernel_size**2 + 1)


@dataclass(frozen=True)
class DenseLayerSpec:
    """One fully-connected layer."""

    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        check_int_in_range(self.in_features, "in_features", minimum=1)
        check_int_in_range(self.out_features, "out_features", minimum=1)

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one forward pass."""
        return self.in_features * self.out_features

    @property
    def parameters(self) -> int:
        """Weight + bias count."""
        return self.out_features * (self.in_features + 1)


@dataclass(frozen=True)
class ConvNetSpec:
    """Architecture summary of the MANN's feature extractor."""

    conv_layers: Tuple[ConvLayerSpec, ...]
    dense_layers: Tuple[DenseLayerSpec, ...]

    @property
    def total_macs(self) -> int:
        """MACs of one forward pass through the whole network."""
        return sum(layer.macs for layer in self.conv_layers) + sum(
            layer.macs for layer in self.dense_layers
        )

    @property
    def total_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(layer.parameters for layer in self.conv_layers) + sum(
            layer.parameters for layer in self.dense_layers
        )

    @property
    def embedding_dim(self) -> int:
        """Width of the final layer (the embedding handed to the memory)."""
        if not self.dense_layers:
            raise ConfigurationError("a ConvNetSpec needs at least one dense layer")
        return self.dense_layers[-1].out_features


def paper_convnet(image_size: int = OMNIGLOT_IMAGE_SIZE) -> ConvNetSpec:
    """The exact architecture of Sec. IV-C with computed MAC counts.

    Layer sequence: conv3x3/64, conv3x3/64, max-pool, conv3x3/128,
    conv3x3/128, max-pool, FC-128, FC-64.
    """
    check_int_in_range(image_size, "image_size", minimum=8)
    after_pool1 = image_size // 2
    after_pool2 = after_pool1 // 2
    conv_layers = (
        ConvLayerSpec(in_channels=1, out_channels=64, kernel_size=3, input_size=image_size),
        ConvLayerSpec(in_channels=64, out_channels=64, kernel_size=3, input_size=image_size),
        ConvLayerSpec(in_channels=64, out_channels=128, kernel_size=3, input_size=after_pool1),
        ConvLayerSpec(in_channels=128, out_channels=128, kernel_size=3, input_size=after_pool1),
    )
    flattened = 128 * after_pool2 * after_pool2
    dense_layers = (
        DenseLayerSpec(in_features=flattened, out_features=128),
        DenseLayerSpec(in_features=128, out_features=64),
    )
    return ConvNetSpec(conv_layers=conv_layers, dense_layers=dense_layers)


class SyntheticFeatureExtractor:
    """Stand-in for the trained CNN applied to Omniglot images.

    The extractor owns an embedding space (class prototypes + within-class
    noise); "running the CNN" on an image of class ``c`` means sampling an
    embedding of class ``c``, optionally perturbed by additional extraction
    noise that models test-time augmentation or sensor noise.

    Parameters
    ----------
    space:
        The synthetic embedding space shared with the episode sampler.
    extraction_noise_sigma:
        Extra per-dimension Gaussian noise added on top of the space's
        within-class noise.
    """

    def __init__(
        self,
        space: SyntheticEmbeddingSpace,
        extraction_noise_sigma: float = 0.0,
    ) -> None:
        self.space = space
        self.extraction_noise_sigma = check_non_negative(
            extraction_noise_sigma, "extraction_noise_sigma"
        )
        self.architecture = paper_convnet()

    @property
    def embedding_dim(self) -> int:
        """Width of the produced embeddings."""
        return self.space.embedding_dim

    def extract(self, class_indices, samples_per_class: int = 1, rng: SeedLike = None):
        """Produce embeddings for images of the requested classes."""
        generator = ensure_rng(rng)
        embeddings, labels = self.space.sample(class_indices, samples_per_class, rng=generator)
        if self.extraction_noise_sigma > 0.0:
            noise = generator.normal(0.0, self.extraction_noise_sigma, size=embeddings.shape)
            embeddings = np.maximum(embeddings + noise, 0.0)
        return embeddings, labels

    def inference_macs(self) -> int:
        """MACs of one query's feature extraction (for the energy model)."""
        return self.architecture.total_macs

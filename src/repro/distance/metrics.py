"""Software distance/similarity metrics used as baselines.

Sec. IV-A compares the MCAM distance function against floating-point software
implementations of the cosine and Euclidean distance functions (the GPU
baseline) and against the Hamming distance of the TCAM+LSH approach; the
earlier TCAM work of Laguna et al. used the L-infinity distance.  All of
those metrics are implemented here, both as pairwise functions and as
vectorized "one query against many rows" functions, which is what the search
engines use.

Every metric follows the convention *smaller is closer* so the nearest
neighbor is always an ``argmin``; the cosine metric is therefore expressed as
the cosine *distance* ``1 - cos(a, b)``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import as_1d_array, as_2d_array


def _check_pair(a, b):
    a = as_1d_array(a, "a")
    b = as_1d_array(b, "b")
    if a.shape != b.shape:
        raise ConfigurationError(
            f"vectors must have the same shape, got {a.shape} and {b.shape}"
        )
    return a, b


def _check_rows_query(rows, query):
    rows = as_2d_array(rows, "rows")
    query = as_1d_array(query, "query")
    if rows.shape[1] != query.shape[0]:
        raise ConfigurationError(
            f"query length {query.shape[0]} does not match row width {rows.shape[1]}"
        )
    return rows, query


# ----------------------------------------------------------------------
# Pairwise metrics
# ----------------------------------------------------------------------
def euclidean_distance(a, b) -> float:
    """L2 distance between two vectors."""
    a, b = _check_pair(a, b)
    return float(np.linalg.norm(a - b))


def squared_euclidean_distance(a, b) -> float:
    """Squared L2 distance (monotone in the L2 distance, cheaper to compute)."""
    a, b = _check_pair(a, b)
    difference = a - b
    return float(np.dot(difference, difference))


def manhattan_distance(a, b) -> float:
    """L1 distance between two vectors."""
    a, b = _check_pair(a, b)
    return float(np.sum(np.abs(a - b)))


def linf_distance(a, b) -> float:
    """L-infinity (Chebyshev) distance — the metric of the TCAM design in [4]."""
    a, b = _check_pair(a, b)
    return float(np.max(np.abs(a - b)))


def cosine_distance(a, b) -> float:
    """Cosine distance ``1 - cos(a, b)``.

    Zero-norm vectors are treated as maximally distant from everything
    (distance 1), matching the behaviour of common ANN libraries.
    """
    a, b = _check_pair(a, b)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    similarity = float(np.dot(a, b) / (norm_a * norm_b))
    return 1.0 - float(np.clip(similarity, -1.0, 1.0))


def hamming_distance(a, b) -> int:
    """Number of positions where two equal-length discrete vectors differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ConfigurationError(
            f"hamming distance requires equal-length 1-D vectors, got {a.shape} and {b.shape}"
        )
    return int(np.count_nonzero(a != b))


def minkowski_distance(a, b, order: float = 2.0) -> float:
    """General Minkowski distance of a given ``order`` (p-norm of the difference)."""
    if order <= 0:
        raise ConfigurationError(f"order must be positive, got {order}")
    a, b = _check_pair(a, b)
    return float(np.sum(np.abs(a - b) ** order) ** (1.0 / order))


# ----------------------------------------------------------------------
# One-query-vs-many-rows metrics (used by the search engines)
# ----------------------------------------------------------------------
def euclidean_distances(rows, query) -> np.ndarray:
    """L2 distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.linalg.norm(rows - query[np.newaxis, :], axis=1)


def manhattan_distances(rows, query) -> np.ndarray:
    """L1 distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.sum(np.abs(rows - query[np.newaxis, :]), axis=1)


def linf_distances(rows, query) -> np.ndarray:
    """L-infinity distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.max(np.abs(rows - query[np.newaxis, :]), axis=1)


def cosine_distances(rows, query) -> np.ndarray:
    """Cosine distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    row_norms = np.linalg.norm(rows, axis=1)
    query_norm = np.linalg.norm(query)
    distances = np.ones(rows.shape[0])
    if query_norm == 0.0:
        return distances
    valid = row_norms > 0.0
    similarities = rows[valid] @ query / (row_norms[valid] * query_norm)
    distances[valid] = 1.0 - np.clip(similarities, -1.0, 1.0)
    return distances


def hamming_distances(rows, query) -> np.ndarray:
    """Hamming distance from ``query`` to every row of discrete ``rows``."""
    rows = np.asarray(rows)
    query = np.asarray(query)
    if rows.ndim != 2 or query.ndim != 1 or rows.shape[1] != query.shape[0]:
        raise ConfigurationError(
            f"rows must be (n, d) and query (d,), got {rows.shape} and {query.shape}"
        )
    return np.count_nonzero(rows != query[np.newaxis, :], axis=1)


# ----------------------------------------------------------------------
# Many-queries-vs-many-rows metrics (used by the batched search runtime)
# ----------------------------------------------------------------------
def _check_rows_queries(rows, queries):
    rows = as_2d_array(rows, "rows")
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries.reshape(1, -1)
    if queries.ndim != 2:
        raise ConfigurationError(
            f"queries must be two-dimensional, got shape {queries.shape}"
        )
    if rows.shape[1] != queries.shape[1]:
        raise ConfigurationError(
            f"query width {queries.shape[1]} does not match row width {rows.shape[1]}"
        )
    return rows, queries


#: Cap on the ``chunk * num_rows * num_features`` broadcast temporary used by
#: the elementwise distance matrices; larger batches run in query chunks.
_BROADCAST_CHUNK_ELEMENTS = 1 << 24


def _chunked_broadcast_matrix(rows, queries, reduce_fn) -> np.ndarray:
    """Apply an elementwise-difference reduction per query chunk.

    ``reduce_fn(diff)`` reduces a ``(chunk, num_rows, num_features)``
    difference tensor over its last axis.  Chunking the query axis bounds the
    temporary at ``_BROADCAST_CHUNK_ELEMENTS`` doubles without changing any
    per-query result.
    """
    num_queries = queries.shape[0]
    out = np.empty((num_queries, rows.shape[0]))
    if num_queries == 0:
        return out
    per_query = max(1, rows.shape[0] * rows.shape[1])
    chunk = max(1, _BROADCAST_CHUNK_ELEMENTS // per_query)
    for start in range(0, num_queries, chunk):
        stop = min(start + chunk, num_queries)
        diff = queries[start:stop, np.newaxis, :] - rows[np.newaxis, :, :]
        out[start:stop] = reduce_fn(diff)
    return out


def euclidean_distance_matrix(rows, queries) -> np.ndarray:
    """L2 distance of every query to every row, shape ``(num_queries, num_rows)``."""
    rows, queries = _check_rows_queries(rows, queries)
    return _chunked_broadcast_matrix(
        rows, queries, lambda diff: np.linalg.norm(diff, axis=2)
    )


def manhattan_distance_matrix(rows, queries) -> np.ndarray:
    """L1 distance of every query to every row, shape ``(num_queries, num_rows)``."""
    rows, queries = _check_rows_queries(rows, queries)
    return _chunked_broadcast_matrix(
        rows, queries, lambda diff: np.sum(np.abs(diff), axis=2)
    )


def linf_distance_matrix(rows, queries) -> np.ndarray:
    """L-infinity distance of every query to every row, shape ``(num_queries, num_rows)``."""
    rows, queries = _check_rows_queries(rows, queries)
    return _chunked_broadcast_matrix(
        rows, queries, lambda diff: np.max(np.abs(diff), axis=2)
    )


def cosine_distance_matrix(rows, queries) -> np.ndarray:
    """Cosine distance of every query to every row, shape ``(num_queries, num_rows)``.

    Zero-norm rows or queries are maximally distant (distance 1), matching
    :func:`cosine_distances`.
    """
    rows, queries = _check_rows_queries(rows, queries)
    row_norms = np.linalg.norm(rows, axis=1)
    query_norms = np.linalg.norm(queries, axis=1)
    distances = np.ones((queries.shape[0], rows.shape[0]))
    valid_rows = row_norms > 0.0
    valid_queries = query_norms > 0.0
    if not valid_rows.any() or not valid_queries.any():
        return distances
    similarities = (
        queries[valid_queries] @ rows[valid_rows].T
        / np.outer(query_norms[valid_queries], row_norms[valid_rows])
    )
    block = 1.0 - np.clip(similarities, -1.0, 1.0)
    distances[np.ix_(valid_queries, valid_rows)] = block
    return distances


def hamming_distance_matrix(rows, queries) -> np.ndarray:
    """Hamming distance of every query to every discrete row, ``(num_queries, num_rows)``."""
    rows = np.asarray(rows)
    queries = np.asarray(queries)
    if queries.ndim == 1:
        queries = queries.reshape(1, -1)
    if rows.ndim != 2 or queries.ndim != 2 or rows.shape[1] != queries.shape[1]:
        raise ConfigurationError(
            f"rows must be (n, d) and queries (m, d), got {rows.shape} and {queries.shape}"
        )
    num_queries = queries.shape[0]
    out = np.empty((num_queries, rows.shape[0]), dtype=np.int64)
    if num_queries == 0:
        return out
    chunk = max(1, _BROADCAST_CHUNK_ELEMENTS // max(1, rows.shape[0] * rows.shape[1]))
    for start in range(0, num_queries, chunk):
        stop = min(start + chunk, num_queries)
        out[start:stop] = np.count_nonzero(
            rows[np.newaxis, :, :] != queries[start:stop, np.newaxis, :], axis=2
        )
    return out


#: Registry of batched metrics by name; used by the software search engine.
BATCH_METRICS: Dict[str, Callable] = {
    "euclidean": euclidean_distances,
    "manhattan": manhattan_distances,
    "linf": linf_distances,
    "cosine": cosine_distances,
    "hamming": hamming_distances,
}

#: Registry of distance-matrix metrics by name; used by the batched runtime.
MATRIX_METRICS: Dict[str, Callable] = {
    "euclidean": euclidean_distance_matrix,
    "manhattan": manhattan_distance_matrix,
    "linf": linf_distance_matrix,
    "cosine": cosine_distance_matrix,
    "hamming": hamming_distance_matrix,
}


def get_batch_metric(name: str) -> Callable:
    """Look up a batched metric by name.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a known metric.
    """
    try:
        return BATCH_METRICS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; available metrics: {sorted(BATCH_METRICS)}"
        ) from None


def get_matrix_metric(name: str) -> Callable:
    """Look up a distance-matrix metric by name.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a known metric.
    """
    try:
        return MATRIX_METRICS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; available metrics: {sorted(MATRIX_METRICS)}"
        ) from None

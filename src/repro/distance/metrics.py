"""Software distance/similarity metrics used as baselines.

Sec. IV-A compares the MCAM distance function against floating-point software
implementations of the cosine and Euclidean distance functions (the GPU
baseline) and against the Hamming distance of the TCAM+LSH approach; the
earlier TCAM work of Laguna et al. used the L-infinity distance.  All of
those metrics are implemented here, both as pairwise functions and as
vectorized "one query against many rows" functions, which is what the search
engines use.

Every metric follows the convention *smaller is closer* so the nearest
neighbor is always an ``argmin``; the cosine metric is therefore expressed as
the cosine *distance* ``1 - cos(a, b)``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import as_1d_array, as_2d_array


def _check_pair(a, b):
    a = as_1d_array(a, "a")
    b = as_1d_array(b, "b")
    if a.shape != b.shape:
        raise ConfigurationError(
            f"vectors must have the same shape, got {a.shape} and {b.shape}"
        )
    return a, b


def _check_rows_query(rows, query):
    rows = as_2d_array(rows, "rows")
    query = as_1d_array(query, "query")
    if rows.shape[1] != query.shape[0]:
        raise ConfigurationError(
            f"query length {query.shape[0]} does not match row width {rows.shape[1]}"
        )
    return rows, query


# ----------------------------------------------------------------------
# Pairwise metrics
# ----------------------------------------------------------------------
def euclidean_distance(a, b) -> float:
    """L2 distance between two vectors."""
    a, b = _check_pair(a, b)
    return float(np.linalg.norm(a - b))


def squared_euclidean_distance(a, b) -> float:
    """Squared L2 distance (monotone in the L2 distance, cheaper to compute)."""
    a, b = _check_pair(a, b)
    difference = a - b
    return float(np.dot(difference, difference))


def manhattan_distance(a, b) -> float:
    """L1 distance between two vectors."""
    a, b = _check_pair(a, b)
    return float(np.sum(np.abs(a - b)))


def linf_distance(a, b) -> float:
    """L-infinity (Chebyshev) distance — the metric of the TCAM design in [4]."""
    a, b = _check_pair(a, b)
    return float(np.max(np.abs(a - b)))


def cosine_distance(a, b) -> float:
    """Cosine distance ``1 - cos(a, b)``.

    Zero-norm vectors are treated as maximally distant from everything
    (distance 1), matching the behaviour of common ANN libraries.
    """
    a, b = _check_pair(a, b)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    similarity = float(np.dot(a, b) / (norm_a * norm_b))
    return 1.0 - float(np.clip(similarity, -1.0, 1.0))


def hamming_distance(a, b) -> int:
    """Number of positions where two equal-length discrete vectors differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ConfigurationError(
            f"hamming distance requires equal-length 1-D vectors, got {a.shape} and {b.shape}"
        )
    return int(np.count_nonzero(a != b))


def minkowski_distance(a, b, order: float = 2.0) -> float:
    """General Minkowski distance of a given ``order`` (p-norm of the difference)."""
    if order <= 0:
        raise ConfigurationError(f"order must be positive, got {order}")
    a, b = _check_pair(a, b)
    return float(np.sum(np.abs(a - b) ** order) ** (1.0 / order))


# ----------------------------------------------------------------------
# One-query-vs-many-rows metrics (used by the search engines)
# ----------------------------------------------------------------------
def euclidean_distances(rows, query) -> np.ndarray:
    """L2 distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.linalg.norm(rows - query[np.newaxis, :], axis=1)


def manhattan_distances(rows, query) -> np.ndarray:
    """L1 distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.sum(np.abs(rows - query[np.newaxis, :]), axis=1)


def linf_distances(rows, query) -> np.ndarray:
    """L-infinity distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    return np.max(np.abs(rows - query[np.newaxis, :]), axis=1)


def cosine_distances(rows, query) -> np.ndarray:
    """Cosine distance from ``query`` to every row of ``rows``."""
    rows, query = _check_rows_query(rows, query)
    row_norms = np.linalg.norm(rows, axis=1)
    query_norm = np.linalg.norm(query)
    distances = np.ones(rows.shape[0])
    if query_norm == 0.0:
        return distances
    valid = row_norms > 0.0
    similarities = rows[valid] @ query / (row_norms[valid] * query_norm)
    distances[valid] = 1.0 - np.clip(similarities, -1.0, 1.0)
    return distances


def hamming_distances(rows, query) -> np.ndarray:
    """Hamming distance from ``query`` to every row of discrete ``rows``."""
    rows = np.asarray(rows)
    query = np.asarray(query)
    if rows.ndim != 2 or query.ndim != 1 or rows.shape[1] != query.shape[0]:
        raise ConfigurationError(
            f"rows must be (n, d) and query (d,), got {rows.shape} and {query.shape}"
        )
    return np.count_nonzero(rows != query[np.newaxis, :], axis=1)


#: Registry of batched metrics by name; used by the software search engine.
BATCH_METRICS: Dict[str, Callable] = {
    "euclidean": euclidean_distances,
    "manhattan": manhattan_distances,
    "linf": linf_distances,
    "cosine": cosine_distances,
    "hamming": hamming_distances,
}


def get_batch_metric(name: str) -> Callable:
    """Look up a batched metric by name.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a known metric.
    """
    try:
        return BATCH_METRICS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; available metrics: {sorted(BATCH_METRICS)}"
        ) from None

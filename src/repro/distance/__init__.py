"""Software distance metrics (FP32 baselines of the paper's evaluation)."""

from .metrics import (
    BATCH_METRICS,
    cosine_distance,
    cosine_distances,
    euclidean_distance,
    euclidean_distances,
    get_batch_metric,
    hamming_distance,
    hamming_distances,
    linf_distance,
    linf_distances,
    manhattan_distance,
    manhattan_distances,
    minkowski_distance,
    squared_euclidean_distance,
)

__all__ = [
    "BATCH_METRICS",
    "cosine_distance",
    "cosine_distances",
    "euclidean_distance",
    "euclidean_distances",
    "get_batch_metric",
    "hamming_distance",
    "hamming_distances",
    "linf_distance",
    "linf_distances",
    "manhattan_distance",
    "manhattan_distances",
    "minkowski_distance",
    "squared_euclidean_distance",
]

"""Developer tooling for the reproduction: repo-specific static analysis.

:mod:`repro.devtools.lint` ("reprolint") is an AST-walking checker suite
that mechanically enforces the invariants the serving stack is built on —
seeded-RNG determinism in library code, resource lifecycles, typed
serving-path exceptions, pool-boundary picklability, and concurrency
hygiene.  It runs locally as ``python -m repro.devtools.lint`` and gates
every PR through the CI ``static-analysis`` job.
"""

from .lint import Finding, Rule, all_rules, lint_paths, lint_source

__all__ = ["Finding", "Rule", "all_rules", "lint_paths", "lint_source"]

"""reprolint — repo-specific AST invariant checks.

The serving stack's correctness rests on invariants that ordinary linters
cannot see: bitwise determinism in the simulation library (RNG arrives as
a parameter, never from global state), resource lifecycles (``close()``
plus context-manager plus ``weakref.finalize`` on everything that owns a
pool, thread or shared-memory segment), typed exceptions on the serving
path, picklability of everything crossing the process-pool boundary, and
lock/timeout hygiene in the scheduler and transport.  Each rule here
encodes one of those invariants as an AST check with a stable ``RPLxxx``
code, so violations surface at PR time instead of as flaky chaos-test
failures.

Usage::

    python -m repro.devtools.lint [paths...] [--format human|json]

Suppressions are explicit and line-scoped::

    risky_call()  # reprolint: disable=RPL009 -- why this one is fine

or file-scoped (conventionally right below the module docstring)::

    # reprolint: disable-file=RPL002 -- this module measures wall-clock

``disable=all`` silences every rule for the line or file.  Every
suppression is a reviewed decision; blanket suppressions without a
trailing justification are rejected in review, not by the tool.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "iter_python_files",
]

#: Marker introducing a suppression comment.
_PRAGMA = "# reprolint:"

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "results", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable representation for the CI findings artifact."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`code` (stable ``RPLxxx`` identifier),
    :attr:`name` (short kebab-case slug), :attr:`description` (one line,
    shown by ``--list-rules``) and :attr:`scope` (glob patterns matched
    against the posix-normalized file path; empty means every file), and
    implement :meth:`check` yielding :class:`Finding` objects.
    """

    code: str = "RPL000"
    name: str = "abstract-rule"
    description: str = ""
    #: Glob patterns (posix) selecting the files this rule applies to.
    scope: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix-normalized)."""
        if not self.scope:
            return True
        return any(fnmatch.fnmatch(path, pattern) for pattern in self.scope)

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            code=self.code,
            message=message,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_pragma(comment: str) -> Tuple[str, Set[str]]:
    """Parse one ``# reprolint:`` comment into ``(kind, codes)``.

    ``kind`` is ``"line"``, ``"file"`` or ``""`` (not a suppression);
    ``codes`` may contain the sentinel ``"all"``.
    """
    body = comment.split(_PRAGMA, 1)[1].strip()
    # A trailing "-- justification" is encouraged; strip it before parsing.
    body = body.split("--", 1)[0].strip()
    for kind, prefix in (("file", "disable-file="), ("line", "disable=")):
        if body.startswith(prefix):
            codes = {c.strip().upper() for c in body[len(prefix) :].split(",") if c.strip()}
            codes = {"all" if c == "ALL" else c for c in codes}
            return kind, codes
    return "", set()


def _collect_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Map suppression pragmas to ``(per-line codes, file-wide codes)``."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if _PRAGMA not in text:
            continue
        kind, codes = _parse_pragma(text)
        if kind == "line":
            per_line.setdefault(lineno, set()).update(codes)
        elif kind == "file":
            per_file.update(codes)
    return per_line, per_file


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]], per_file: Set[str]) -> bool:
    if "all" in per_file or finding.code in per_file:
        return True
    codes = per_line.get(finding.line, set())
    return "all" in codes or finding.code in codes


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by code."""
    from .rules import RULES

    return [rule_cls() for rule_cls in RULES]


def _normalize(path: str) -> str:
    """Posix-normalize ``path`` for scope matching and stable output."""
    return os.path.normpath(path).replace(os.sep, "/")


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory module.

    ``path`` is used for rule scoping and finding locations; tests pass
    virtual paths (e.g. ``src/repro/core/fixture.py``) to exercise scoped
    rules on fixture snippets.
    """
    path = _normalize(path)
    active = list(rules) if rules is not None else all_rules()
    tree = ast.parse(source, filename=path)
    per_line, per_file = _collect_suppressions(source)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(tree, source, path):
            if not _suppressed(finding, per_line, per_file):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules=rules)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: Set[str] = set()
    for entry in paths:
        if os.path.isfile(entry):
            normalized = _normalize(entry)
            if normalized not in seen:
                seen.add(normalized)
                yield normalized
            continue
        for dirpath, dirnames, filenames in os.walk(entry):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                normalized = _normalize(os.path.join(dirpath, filename))
                if normalized not in seen:
                    seen.add(normalized)
                    yield normalized


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, files_checked)``.  ``select`` restricts the run
    to the given rule codes.
    """
    active: Sequence[Rule] = rules if rules is not None else all_rules()
    if select is not None:
        wanted = {code.upper() for code in select}
        active = [rule for rule in active if rule.code in wanted]
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path, rules=active))
    return findings, checked


def render_json(findings: Sequence[Finding], checked: int) -> str:
    """The machine-readable report uploaded as a CI artifact."""
    payload = {
        "tool": "reprolint",
        "files_checked": checked,
        "finding_count": len(findings),
        "findings": [finding.to_json() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

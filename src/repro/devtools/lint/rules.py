"""The reprolint rule set: one class per invariant, one stable code each.

Scopes follow the layering the repo established in PRs 1–8:

* **library scope** (``repro.core``, ``repro.circuits``, ``repro.mann``,
  ``repro.encoding``) is simulation-pure: results must be a function of
  the inputs and the caller-provided RNG, so global random state and
  wall-clock reads are banned there (RPL001, RPL002);
* **resource scope** (all of ``src/repro``) owns pools, threads and
  shared memory: lifecycle rules RPL003–RPL005 apply;
* **serving scope** (``repro.runtime``, ``repro.serving``) is the fault
  domain: exception typing (RPL006), swallow hygiene (RPL007), timeout
  discipline and pump purity (RPL009) and lock ordering (RPL010) apply;
* **pool boundary** (everywhere, including tests and benchmarks):
  nothing unpicklable crosses ``submit_all``/``map_cached``/
  ``submit_cached``/``broadcast``/``register_shard_executor`` (RPL008);
* **persistence scope** (``repro.utils.io``, ``repro.storage``,
  ``repro.runtime.transport``): files land via tmp-write +
  ``os.replace``, never an in-place write-mode open (RPL011).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from . import Finding, Rule

__all__ = ["RULES", "LOCK_ORDER"]

# Scope globs --------------------------------------------------------------
_LIBRARY = (
    "*src/repro/core/*",
    "*src/repro/circuits/*",
    "*src/repro/mann/*",
    "*src/repro/encoding/*",
)
_PACKAGE = ("*src/repro/*",)
_SERVING = ("*src/repro/runtime/*", "*src/repro/serving/*")


def _dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; ``""`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _call_name(call: ast.Call) -> str:
    return _dotted_name(call.func)


class UnseededRandomRule(Rule):
    """RPL001: library code must receive its RNG as a parameter.

    Flags calls into the legacy global-state numpy API
    (``np.random.seed``/``rand``/...), zero-argument
    ``np.random.default_rng()``, stdlib ``random.*`` module functions and
    zero-argument ``random.Random()`` inside the simulation-pure
    packages.  Seeded constructions (``default_rng(seed_material)``,
    ``Random(seed)``, ``SeedSequence``) pass.
    """

    code = "RPL001"
    name = "unseeded-rng-in-library"
    description = (
        "library code (core/circuits/mann/encoding) must not draw from "
        "global or unseeded RNG state; the generator arrives as a parameter"
    )
    scope = _LIBRARY

    _LEGACY_NUMPY = {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
        "poisson",
        "bytes",
        "get_state",
        "set_state",
    }
    _STDLIB_RANDOM = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "seed",
        "getrandbits",
        "betavariate",
        "expovariate",
    }

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if dotted.startswith(("np.random.", "numpy.random.")):
                tail = dotted.rsplit(".", 1)[1]
                if tail == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        path,
                        node,
                        "np.random.default_rng() without seed material draws fresh "
                        "entropy; thread the caller's Generator instead",
                    )
                elif tail in self._LEGACY_NUMPY:
                    yield self.finding(
                        path,
                        node,
                        f"legacy global-state call np.random.{tail}(); use the "
                        "Generator passed in by the caller",
                    )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                tail = dotted.rsplit(".", 1)[1]
                if tail in self._STDLIB_RANDOM:
                    yield self.finding(
                        path,
                        node,
                        f"stdlib random.{tail}() uses interpreter-global state; "
                        "library code must take an explicit seeded generator",
                    )
            elif dotted in ("Random", "random.Random") and not node.args and not node.keywords:
                yield self.finding(
                    path,
                    node,
                    "Random() without a seed is entropy-seeded; pass explicit "
                    "seed material",
                )


class WallClockInLibraryRule(Rule):
    """RPL002: no wall-clock or sleep dependence in simulation-pure code."""

    code = "RPL002"
    name = "wall-clock-in-library"
    description = (
        "library code (core/circuits/mann/encoding) must not read clocks "
        "or sleep; results must be a pure function of inputs"
    )
    scope = _LIBRARY

    _CLOCKS = {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _call_name(node) in self._CLOCKS:
                yield self.finding(
                    path,
                    node,
                    f"{_call_name(node)}() makes library results time-dependent",
                )


class CloseNeedsContextManagerRule(Rule):
    """RPL003: a ``close()`` method implies context-manager support."""

    code = "RPL003"
    name = "close-without-context-manager"
    description = (
        "classes defining close() must also define __enter__/__exit__ so "
        "callers can scope the resource with `with`"
    )
    scope = _PACKAGE

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "close" in methods and not {"__enter__", "__exit__"} <= methods:
                yield self.finding(
                    path,
                    node,
                    f"class {node.name} defines close() but not "
                    "__enter__/__exit__ (inherited implementations need a "
                    "suppression naming the base class)",
                )


class ResourceNeedsFinalizerRule(Rule):
    """RPL004: raw pools/threads/segments need a ``weakref.finalize`` net.

    A class that constructs a ``ProcessPoolExecutor``,
    ``ThreadPoolExecutor``, ``SharedMemory`` or ``threading.Thread``
    holds a resource the garbage collector will not release; ``close()``
    handles the happy path, but only a ``weakref.finalize`` registration
    guarantees cleanup when the owner is dropped without ``close()``.
    """

    code = "RPL004"
    name = "resource-without-finalizer"
    description = (
        "classes constructing pools, threads or shared memory must "
        "register a weakref.finalize safety net"
    )
    scope = _PACKAGE

    _RESOURCE_TAILS = {"ProcessPoolExecutor", "ThreadPoolExecutor", "SharedMemory", "Thread"}

    def _class_calls(self, cls: ast.ClassDef) -> Iterator[ast.Call]:
        """Calls in ``cls``'s own body, not in nested class definitions."""
        stack: List[ast.AST] = list(cls.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            resource: Optional[str] = None
            has_finalizer = False
            for call in self._class_calls(node):
                dotted = _call_name(call)
                tail = dotted.rsplit(".", 1)[-1]
                if tail in self._RESOURCE_TAILS and resource is None:
                    # Bare `Thread` must actually be threading.Thread or an
                    # unqualified import; both spell the tail the same way.
                    resource = tail
                if dotted in ("weakref.finalize", "finalize"):
                    has_finalizer = True
            if resource is not None and not has_finalizer:
                yield self.finding(
                    path,
                    node,
                    f"class {node.name} constructs {resource} but never "
                    "registers weakref.finalize; an abandoned instance leaks "
                    "the resource",
                )


class SharedMemoryUnlinkRule(Rule):
    """RPL005: every ``SharedMemory(create=True)`` site needs an unlink path."""

    code = "RPL005"
    name = "shared-memory-without-unlink"
    description = (
        "files creating SharedMemory segments must contain an unlink() "
        "call so /dev/shm cannot leak"
    )

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        create_sites: List[ast.Call] = []
        has_unlink = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if dotted.rsplit(".", 1)[-1] == "SharedMemory" and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                create_sites.append(node)
            if isinstance(node.func, ast.Attribute) and node.func.attr == "unlink":
                has_unlink = True
        if not has_unlink:
            for site in create_sites:
                yield self.finding(
                    path,
                    site,
                    "SharedMemory(create=True) without a reachable unlink() in "
                    "this file; the segment outlives the process",
                )


class ServingRaisesTypedRule(Rule):
    """RPL006: serving-path raises use the typed exception hierarchy.

    Failures crossing the serving seam must be classifiable by callers:
    :class:`~repro.exceptions.ServingError` subclasses for runtime
    failures, :class:`~repro.exceptions.ConfigurationError` for
    construction-time validation.  Plain ``ValueError``/``RuntimeError``
    raised from ``repro.runtime``/``repro.serving`` are flagged.
    Re-raising a caught exception object (lowercase name) passes.
    """

    code = "RPL006"
    name = "untyped-serving-raise"
    description = (
        "raises inside repro.runtime/repro.serving must use ServingError "
        "subclasses (or ConfigurationError for setup validation)"
    )
    scope = _SERVING

    _ALLOWED = {
        "ServingError",
        "ServingOverloadError",
        "ServingTimeoutError",
        "WorkerCrashError",
        "SpoolIntegrityError",
        "SnapshotIntegrityError",
        "ConfigurationError",
    }

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = _dotted_name(target).rsplit(".", 1)[-1]
            if not name or not name[0].isupper():
                continue  # re-raise of a caught exception object
            if name not in self._ALLOWED:
                yield self.finding(
                    path,
                    node,
                    f"raise {name} on the serving path; use a ServingError "
                    "subclass (or ConfigurationError for setup validation)",
                )


class SilentExceptionSwallowRule(Rule):
    """RPL007: no bare ``except:`` and no silent broad swallows."""

    code = "RPL007"
    name = "silent-exception-swallow"
    description = (
        "bare except: clauses and `except Exception: pass` bodies hide "
        "failures; narrow the type or handle the error visibly"
    )

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exception type",
                )
                continue
            type_name = _dotted_name(node.type).rsplit(".", 1)[-1]
            body_is_silent = all(isinstance(stmt, ast.Pass) for stmt in node.body)
            if type_name in ("Exception", "BaseException") and body_is_silent:
                yield self.finding(
                    path,
                    node,
                    f"except {type_name}: pass swallows every failure silently; "
                    "narrow the type, log, or account for the error",
                )


class PoolBoundaryPicklableRule(Rule):
    """RPL008: nothing unpicklable crosses the process-pool boundary.

    Lambdas and functions defined inside another function cannot be
    pickled, so passing one into the pool seam
    (``submit_all``/``map_cached``/``submit_cached``/``broadcast``/
    ``register_shard_executor``) fails only at dispatch time, deep inside
    a worker traceback.  Flag it at the call site instead.
    """

    code = "RPL008"
    name = "unpicklable-at-pool-boundary"
    description = (
        "lambdas/nested functions must not be passed into submit_all/"
        "map_cached/submit_cached/broadcast/register_shard_executor"
    )

    _BOUNDARY = {
        "submit_all",
        "map_cached",
        "submit_cached",
        "broadcast",
        "register_shard_executor",
    }

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        nested: Set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        nested = self._nested_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func_tail = _call_name(node).rsplit(".", 1)[-1]
            if func_tail not in self._BOUNDARY:
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        path,
                        argument,
                        f"lambda passed into {func_tail}() cannot cross the "
                        "process boundary; use a module-level function",
                    )
                elif isinstance(argument, ast.Name) and argument.id in nested:
                    yield self.finding(
                        path,
                        argument,
                        f"nested function {argument.id!r} passed into "
                        f"{func_tail}() cannot be pickled; hoist it to module "
                        "level",
                    )


class UntimedBlockingRule(Rule):
    """RPL009: serving code never blocks without a bound.

    ``Future.result()`` with no timeout (or a literal ``None``) turns a
    lost worker into a hang; the deadline machinery of PR 8 exists so
    every wait has a bound or an explicit, caller-visible decision not
    to.  ``time.sleep`` on the scheduler pump path is flagged for the
    same reason: the pump's only legal wait is the condition variable.
    """

    code = "RPL009"
    name = "unbounded-blocking-call"
    description = (
        ".result() needs a timeout argument in repro.runtime/repro.serving; "
        "time.sleep is banned in the scheduler pump module"
    )
    scope = _SERVING

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        in_scheduler = path.endswith("serving/scheduler.py")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if in_scheduler and dotted == "time.sleep":
                yield self.finding(
                    path,
                    node,
                    "time.sleep on the scheduler pump path stalls every lane; "
                    "wait on the condition variable with a timeout instead",
                )
                continue
            if not (isinstance(node.func, ast.Attribute) and node.func.attr == "result"):
                continue
            timeout_args = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg == "timeout"
            ]
            if not timeout_args or any(
                isinstance(a, ast.Constant) and a.value is None for a in timeout_args
            ):
                yield self.finding(
                    path,
                    node,
                    ".result() without a timeout hangs forever if the worker "
                    "dies; pass a bound (or suppress with the reason it is "
                    "safe)",
                )


#: Declared lock acquisition order for the concurrency-bearing modules,
#: outermost first.  A thread holding a lock may only acquire locks that
#: appear *later* in this table; RPL010 enforces the order for nested
#: ``with`` acquisitions, and new locks must be added here before use.
LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    ("scheduler.py", "_cond"),  # engine pump condition — always outermost
    ("process_pool.py", "_lock"),  # executor publish/evict/transport state
    ("transport.py", "_lock"),  # ring/segment bookkeeping (reserved)
    ("scheduler.py", "_lock"),  # ServingStats counters — always a leaf
)


class LockOrderRule(Rule):
    """RPL010: nested lock acquisitions follow :data:`LOCK_ORDER`."""

    code = "RPL010"
    name = "lock-order-violation"
    description = (
        "nested lock acquisitions in scheduler.py/transport.py/"
        "process_pool.py must follow the declared LOCK_ORDER table"
    )
    scope = (
        "*src/repro/serving/scheduler.py",
        "*src/repro/runtime/transport.py",
        "*src/repro/runtime/process_pool.py",
    )

    @staticmethod
    def _rank(filename: str, attr: str) -> Optional[int]:
        for rank, (table_file, table_attr) in enumerate(LOCK_ORDER):
            if filename.endswith(table_file) and attr == table_attr:
                return rank
        return None

    def _visit(
        self, path: str, body: List[ast.stmt], held: List[Tuple[str, int]]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[Tuple[str, int]] = []
                for item in stmt.items:
                    expr = item.context_expr
                    # Accept both `with self._lock:` and `with lock.acquire…`-
                    # style attribute chains; the table is attribute-name keyed.
                    attr = expr.attr if isinstance(expr, ast.Attribute) else ""
                    rank = self._rank(path, attr)
                    if rank is None:
                        continue
                    for held_attr, held_rank in held + acquired:
                        if rank <= held_rank:
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"acquiring {attr!r} while holding "
                                    f"{held_attr!r} violates LOCK_ORDER "
                                    "(see repro.devtools.lint.rules.LOCK_ORDER)"
                                ),
                                path=path,
                                line=stmt.lineno,
                                col=stmt.col_offset,
                            )
                    acquired.append((attr, rank))
                yield from self._visit(path, stmt.body, held + acquired)
                continue
            for child_body in self._child_bodies(stmt):
                yield from self._visit(path, child_body, held)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies: List[List[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        if isinstance(stmt, ast.Try):
            bodies.extend(handler.body for handler in stmt.handlers)
        return bodies

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        yield from self._visit(path, tree.body, [])


class NonAtomicPersistRule(Rule):
    """RPL011: persistence paths must not write files in place.

    A crash mid-``open(path, "w")`` leaves a truncated file where a
    reader expects a complete one — for snapshot manifests, spool
    entries and exported results that is silent data loss.  Inside the
    persistence modules, every write-mode open must target a temporary
    sibling that is later renamed into place (``os.replace``): the rule
    flags write-mode ``open`` calls whose target expression does not
    mention a staging name (``tmp``/``staging``/``partial``).  Append
    mode is exempt — journals extend in place by design, protected by
    per-record framing instead of atomic replacement.
    """

    code = "RPL011"
    name = "non-atomic-persist"
    description = (
        "persistence code must write to a tmp/staging sibling and rename "
        "into place; in-place open(..., 'w') leaves torn files on crash"
    )
    scope = (
        "*src/repro/utils/io.py",
        "*src/repro/storage/*",
        "*src/repro/runtime/transport.py",
    )

    _STAGING_MARKERS = ("tmp", "staging", "partial")

    @staticmethod
    def _mode_of(node: ast.Call, mode_position: int) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                value = keyword.value.value
                return value if isinstance(value, str) else None
        if len(node.args) > mode_position and isinstance(node.args[mode_position], ast.Constant):
            value = node.args[mode_position].value
            return value if isinstance(value, str) else None
        return None

    def _target_is_staged(self, source: str, target: ast.AST) -> bool:
        segment = ast.get_source_segment(source, target) or ""
        lowered = segment.lower()
        return any(marker in lowered for marker in self._STAGING_MARKERS)

    def check(self, tree: ast.Module, source: str, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            target: Optional[ast.AST]
            if dotted == "open" and node.args:
                mode = self._mode_of(node, mode_position=1)
                target = node.args[0]
            elif dotted.endswith(".open") and isinstance(node.func, ast.Attribute):
                mode = self._mode_of(node, mode_position=0)
                target = node.func.value
            else:
                continue
            if mode is None or "w" not in mode:
                continue
            if target is not None and self._target_is_staged(source, target):
                continue
            yield self.finding(
                path,
                node,
                f"in-place write-mode open ({mode!r}) in a persistence path; "
                "write a tmp/staging sibling and os.replace() it into place",
            )


#: Every rule, in code order; the framework instantiates these.
RULES: Tuple[Type[Rule], ...] = (
    UnseededRandomRule,
    WallClockInLibraryRule,
    CloseNeedsContextManagerRule,
    ResourceNeedsFinalizerRule,
    SharedMemoryUnlinkRule,
    ServingRaisesTypedRule,
    SilentExceptionSwallowRule,
    PoolBoundaryPicklableRule,
    UntimedBlockingRule,
    LockOrderRule,
    NonAtomicPersistRule,
)

"""Command-line entry point: ``python -m repro.devtools.lint [paths...]``.

Exit status is 0 when the tree is clean, 1 when findings remain and 2 on
usage errors — the contract the CI ``static-analysis`` job gates on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import all_rules, lint_paths, render_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="reprolint: repo-specific AST invariant checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the report to FILE (useful with --format json)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its description and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    options = _build_parser().parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    select: Optional[List[str]] = None
    if options.select is not None:
        select = [code.strip() for code in options.select.split(",") if code.strip()]

    findings, checked = lint_paths(options.paths, select=select)

    if options.format == "json":
        report = render_json(findings, checked)
    else:
        lines = [finding.render() for finding in findings]
        lines.append(
            f"reprolint: {len(findings)} finding(s) in {checked} file(s)"
            + ("" if findings else " — clean")
        )
        report = "\n".join(lines)

    print(report)
    if options.output is not None:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

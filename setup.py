"""Packaging for the FeFET MCAM nearest-neighbor search reproduction."""

import re
from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).parent

VERSION = re.search(
    r'__version__ = "([^"]+)"',
    (HERE / "src" / "repro" / "version.py").read_text(encoding="utf-8"),
).group(1)

README = HERE / "README.md"

setup(
    name="repro-fefet-mcam-nn",
    version=VERSION,
    description=(
        "Reproduction of 'In-Memory Nearest Neighbor Search with FeFET "
        "Multi-Bit Content-Addressable Memories' (DATE 2021)"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    include_package_data=True,
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)

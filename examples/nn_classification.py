"""NN classification on the four UCI-style datasets (paper Fig. 6).

Runs the full Fig. 6 protocol: for each dataset (Iris, Wine, Breast Cancer,
Wine Quality red — synthetic substitutes, see DESIGN.md) the data is split
80/20, each of the five search methods is fitted on the training split and
evaluated on the test split, and the accuracies are averaged over several
random splits.  The output is the table behind the paper's bar chart plus the
average MCAM-versus-TCAM+LSH gap the paper quotes (~12%).

Run with::

    python examples/nn_classification.py [num_splits]
"""

from __future__ import annotations

import sys


from repro.analysis import FIG6_METHODS, NNClassificationBenchmark, average_gap_percent
from repro.datasets import FIG6_DATASET_KEYS, UCI_SPECS, load_uci_dataset
from repro.utils import format_table

SEED = 23
DEFAULT_SPLITS = 5


def main(num_splits: int = DEFAULT_SPLITS) -> None:
    benchmark = NNClassificationBenchmark(methods=FIG6_METHODS, num_splits=num_splits)
    print(f"averaging over {num_splits} random 80/20 splits per dataset\n")

    rows = []
    results_by_dataset = {}
    for index, key in enumerate(FIG6_DATASET_KEYS):
        results = benchmark.evaluate_dataset(
            lambda seed, key=key: load_uci_dataset(key, rng=seed),
            rng=SEED + index,
        )
        results_by_dataset[key] = results
        rows.append(
            [UCI_SPECS[key].name] + [results[m].accuracy_percent for m in FIG6_METHODS]
        )

    headers = ["dataset"] + list(FIG6_METHODS)
    print(format_table(headers, rows, float_format="{:.1f}"))

    gap_3bit = average_gap_percent(results_by_dataset, "mcam-3bit", "tcam-lsh")
    gap_2bit = average_gap_percent(results_by_dataset, "mcam-2bit", "tcam-lsh")
    gap_soft = average_gap_percent(results_by_dataset, "mcam-3bit", "euclidean")
    print(f"\n3-bit MCAM vs TCAM+LSH, averaged over datasets: {gap_3bit:+.1f} points")
    print(f"2-bit MCAM vs TCAM+LSH, averaged over datasets: {gap_2bit:+.1f} points")
    print(f"3-bit MCAM vs Euclidean (FP32), averaged over datasets: {gap_soft:+.1f} points")
    print(
        "\nAs in the paper, the MCAMs track (or slightly exceed) the software "
        "baselines while TCAM+LSH — whose signature length is capped at the "
        "feature count for an iso-word-length comparison — loses roughly ten "
        "points on average."
    )


if __name__ == "__main__":
    splits = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SPLITS
    main(splits)

"""Device variation studies: Fig. 5 (Vth spread) and Fig. 8 (accuracy vs sigma).

Part 1 programs a population of FeFET devices to all eight states with the
single-pulse (no-verify) scheme under the domain-switching Monte-Carlo model
and prints the per-state threshold-voltage statistics of Fig. 5.

Part 2 sweeps a Gaussian Vth-variation sigma from 0 mV to 300 mV, rebuilds
the 3-bit conductance look-up table at each point and re-evaluates few-shot
accuracy — the Fig. 8 robustness study.  The accuracy stays flat up to the
~80 mV sigma the device study produces and only degrades for much larger,
hypothetical variation levels.

Run with::

    python examples/variation_study.py [num_episodes]
"""

from __future__ import annotations

import sys


from repro.analysis import VariationSweep
from repro.datasets import SyntheticEmbeddingSpace
from repro.devices import DevicePopulation
from repro.utils import format_table

SEED = 31
DEFAULT_EPISODES = 25


def part1_population() -> None:
    print("=== Part 1: Fig. 5 — Vth distributions of a programmed device population ===\n")
    population = DevicePopulation(num_devices=600)
    summary = population.run_fast(rng=SEED)
    rows = [
        [
            record["state"],
            record["target_vth_v"],
            record["mean_vth_v"],
            record["sigma_mv"],
        ]
        for record in summary.as_records()
    ]
    print(
        format_table(
            ["state", "target Vth (V)", "mean Vth (V)", "sigma (mV)"],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        f"\nlargest per-state sigma: {1e3 * summary.max_sigma_v:.1f} mV "
        "(the paper's Monte-Carlo study reports up to ~80 mV)\n"
    )


def part2_sigma_sweep(num_episodes: int) -> None:
    print("=== Part 2: Fig. 8 — few-shot accuracy of the 3-bit MCAM vs Vth sigma ===\n")
    space = SyntheticEmbeddingSpace(seed=SEED)
    tasks = ((5, 1), (20, 1))
    with VariationSweep(
        space,
        tasks=tasks,
        sigmas_v=(0.0, 0.05, 0.08, 0.15, 0.20, 0.30),
        num_episodes=num_episodes,
        luts_per_sigma=2,
    ) as sweep:
        result = sweep.run(rng=SEED)

    headers = ["sigma (mV)"] + [f"{n}-way {k}-shot (%)" for n, k in tasks]
    sigmas_mv, _ = result.series(*tasks[0])
    rows = []
    for sigma_mv in sigmas_mv:
        row = [sigma_mv]
        for n_way, k_shot in tasks:
            _, accuracies = result.series(n_way, k_shot)
            row.append(accuracies[list(sigmas_mv).index(sigma_mv)])
        rows.append(row)
    print(format_table(headers, rows, float_format="{:.1f}"))

    for n_way, k_shot in tasks:
        drop80 = result.accuracy_drop_at(0.08, n_way, k_shot)
        drop300 = result.accuracy_drop_at(0.30, n_way, k_shot)
        print(
            f"\n{n_way}-way {k_shot}-shot: accuracy change at 80 mV = {-drop80:+.1f} points, "
            f"at 300 mV = {-drop300:+.1f} points"
        )
    print(
        "\nAs in the paper, the proposed distance function tolerates the "
        "realistic (<=80 mV) variation of verify-free programming without "
        "accuracy loss."
    )


if __name__ == "__main__":
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_EPISODES
    part1_population()
    part2_sigma_sweep(episodes)

"""Few-shot learning with a memory-augmented neural network (paper Fig. 7).

The MANN pipeline of Sec. IV-C classifies previously unseen character
classes from only a handful of examples: a CNN front-end produces 64-d
embeddings, the support embeddings are written to a memory, and each query
is labeled by its nearest stored neighbor.  This example runs the paper's
four task configurations (5/20-way, 1/5-shot) for all five search methods
on the synthetic Omniglot-like embedding space and prints the accuracy table
that Fig. 7 plots as bars.

Run with::

    python examples/few_shot_learning.py [num_episodes]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.datasets import SyntheticEmbeddingSpace
from repro.mann import FewShotEvaluator, PAPER_FEWSHOT_TASKS, default_method_factories
from repro.utils import format_table

SEED = 11
DEFAULT_EPISODES = 50

#: Display order matching the paper's figure legend.
METHOD_ORDER = ("mcam-3bit", "mcam-2bit", "tcam-lsh", "cosine", "euclidean")


def main(num_episodes: int = DEFAULT_EPISODES) -> None:
    space = SyntheticEmbeddingSpace(seed=SEED)
    factories = default_method_factories(space.embedding_dim, seed=SEED)
    print(
        f"embedding space: {space.num_classes} classes, {space.embedding_dim}-d "
        f"embeddings (CNN front-end substitute)\n"
        f"episodes per task: {num_episodes}\n"
    )

    rows = []
    gaps = []
    for n_way, k_shot in PAPER_FEWSHOT_TASKS:
        with FewShotEvaluator(
            space, n_way=n_way, k_shot=k_shot, num_episodes=num_episodes
        ) as evaluator:
            results = evaluator.compare(factories, rng=SEED)
        rows.append(
            [f"{n_way}-way {k_shot}-shot"]
            + [results[m].accuracy_percent for m in METHOD_ORDER]
        )
        gaps.append(
            results["mcam-3bit"].accuracy_percent - results["tcam-lsh"].accuracy_percent
        )

    headers = ["task"] + list(METHOD_ORDER)
    print(format_table(headers, rows, float_format="{:.2f}"))
    print(
        f"\naverage 3-bit MCAM advantage over TCAM+LSH: {np.mean(gaps):.1f} "
        "percentage points (paper reports ~13%)"
    )
    print(
        "The 2-/3-bit MCAMs track the FP32 cosine/Euclidean baselines within "
        "~1-2 points while the Hamming-distance TCAM+LSH baseline trails "
        "clearly — the qualitative result of the paper's Fig. 7."
    )


if __name__ == "__main__":
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_EPISODES
    main(episodes)

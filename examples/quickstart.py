"""Quickstart: nearest-neighbor classification with a 3-bit FeFET MCAM.

This example walks through the core public API in a few steps:

1. generate a small labeled dataset (an Iris-like synthetic substitute),
2. split it 80/20 as in the paper's NN-classification protocol,
3. build the three search engines the paper compares — FP32 cosine software
   search, the TCAM+LSH baseline and the proposed 3-bit MCAM — through the
   backend registry,
4. classify the whole test batch with each engine in one vectorized search
   and compare accuracies,
5. peek inside the MCAM: the quantized states stored in the array and the
   conductance-based distance ranking for a batch of queries.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import available_backends, make_searcher
from repro.datasets import load_iris, train_test_split
from repro.utils import accuracy, format_table

SEED = 7


def main() -> None:
    # 1. Data: an Iris-like dataset (150 samples, 4 features, 3 classes).
    dataset = load_iris(rng=SEED)
    split = train_test_split(dataset, test_fraction=0.2, rng=SEED)
    print(
        f"dataset: {dataset.name} — {dataset.num_samples} samples, "
        f"{dataset.num_features} features, {dataset.num_classes} classes"
    )
    print(f"train/test split: {split.train.num_samples}/{split.test.num_samples} samples")

    # 2. Engines are discoverable by name through the backend registry; the
    #    CAM word length always equals the number of features.
    print(f"registered search backends: {', '.join(available_backends())}\n")
    engines = {
        "cosine (FP32 software)": make_searcher("cosine", dataset.num_features),
        "TCAM + LSH (Hamming)": make_searcher("tcam-lsh", dataset.num_features, seed=SEED),
        "MCAM 3-bit (proposed)": make_searcher("mcam-3bit", dataset.num_features, seed=SEED),
    }

    # 3. Fit every engine on the same training data and classify the whole
    #    test batch in one vectorized search (predict_batch).
    rows = []
    for name, engine in engines.items():
        engine.fit(split.train.features, split.train.labels)
        predictions = engine.predict_batch(split.test.features)
        rows.append([name, 100.0 * accuracy(predictions, split.test.labels)])
    print(format_table(["method", "test accuracy (%)"], rows, float_format="{:.1f}"))

    # 4. Look inside the MCAM: stored states and the batched distance ranking.
    mcam = engines["MCAM 3-bit (proposed)"]
    queries = split.test.features[:3]
    query_states = mcam.quantizer.quantize(queries)
    batch = mcam.kneighbors_batch(queries, k=3)
    print("\nfirst three test queries, quantized to 3-bit states:")
    for states in query_states:
        print(f"  {states.tolist()}")
    print("three nearest stored rows per query (row index, ML conductance in uS, label):")
    for q in range(len(batch)):
        result = batch[q]
        neighbors = ", ".join(
            f"row {index:3d} @ {1e6 * score:7.3f} uS -> class {label}"
            for index, score, label in zip(result.indices, result.scores, result.labels)
        )
        print(f"  query {q}: {neighbors}")
    print(
        "\nThe row with the smallest match-line conductance is the nearest "
        "neighbor — the MCAM ranks the whole query batch in one vectorized "
        "in-memory search pass."
    )


if __name__ == "__main__":
    main()

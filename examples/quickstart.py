"""Quickstart: nearest-neighbor classification with a 3-bit FeFET MCAM.

This example walks through the core public API in a few steps:

1. generate a small labeled dataset (an Iris-like synthetic substitute),
2. split it 80/20 as in the paper's NN-classification protocol,
3. fit the three search engines the paper compares — FP32 cosine software
   search, the TCAM+LSH baseline and the proposed 3-bit MCAM — on the same
   training data,
4. classify the test queries with each engine and compare accuracies,
5. peek inside the MCAM: the quantized states stored in the array and the
   conductance-based distance ranking for one query.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MCAMSearcher, SoftwareSearcher, TCAMLSHSearcher
from repro.datasets import load_iris, train_test_split
from repro.utils import accuracy, format_table

SEED = 7


def main() -> None:
    # 1. Data: an Iris-like dataset (150 samples, 4 features, 3 classes).
    dataset = load_iris(rng=SEED)
    split = train_test_split(dataset, test_fraction=0.2, rng=SEED)
    print(
        f"dataset: {dataset.name} — {dataset.num_samples} samples, "
        f"{dataset.num_features} features, {dataset.num_classes} classes"
    )
    print(f"train/test split: {split.train.num_samples}/{split.test.num_samples} samples\n")

    # 2. The three engines of the paper's comparison.  The CAM word length
    #    always equals the number of features.
    engines = {
        "cosine (FP32 software)": SoftwareSearcher(metric="cosine"),
        "TCAM + LSH (Hamming)": TCAMLSHSearcher(num_bits=dataset.num_features, seed=SEED),
        "MCAM 3-bit (proposed)": MCAMSearcher(bits=3, seed=SEED),
    }

    # 3. Fit every engine on the same training data and classify the test set.
    rows = []
    for name, engine in engines.items():
        engine.fit(split.train.features, split.train.labels)
        predictions = engine.predict(split.test.features)
        rows.append([name, 100.0 * accuracy(predictions, split.test.labels)])
    print(format_table(["method", "test accuracy (%)"], rows, float_format="{:.1f}"))

    # 4. Look inside the MCAM: stored states and the distance ranking.
    mcam = engines["MCAM 3-bit (proposed)"]
    query = split.test.features[0]
    query_states = mcam.quantizer.quantize(query.reshape(1, -1))[0]
    result = mcam.kneighbors(query, k=3)
    print("\nfirst test query, quantized to 3-bit states:", query_states.tolist())
    print("three nearest stored rows (row index, ML conductance in uS, label):")
    for index, score, label in zip(result.indices, result.scores, result.labels):
        print(f"  row {index:3d}   {1e6 * score:8.3f} uS   class {label}")
    print(
        "\nThe row with the smallest match-line conductance is the nearest "
        "neighbor — the MCAM finds it in a single in-memory search step."
    )


if __name__ == "__main__":
    main()

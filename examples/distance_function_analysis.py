"""Device/circuit-level analysis of the MCAM distance function (paper Figs. 2, 4, 9).

This example works bottom-up through the hardware substrate:

1. Fig. 2(b): transfer characteristics of one FeFET programmed to the eight
   threshold-voltage levels of the multi-bit scheme,
2. Fig. 4: the conductance-versus-distance curve of a 3-bit cell, the full
   look-up table and the bell-shaped derivative that makes the distance
   function well suited to NN search,
3. the G^n_d study of Sec. III-B (concentrated mismatches conduct more than
   spread-out ones),
4. Fig. 9(a)/(b): the 2-bit distance function from simulation and from the
   synthesized GLOBALFOUNDRIES AND-array "measurement".

Run with::

    python examples/distance_function_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyze_distance_function, run_gnd_study
from repro.circuits import ANDArrayExperiment
from repro.devices import FeFET, PreisachModel, subthreshold_swing_from_curve
from repro.utils import format_table

SEED = 5


def part1_transfer_characteristics() -> None:
    print("=== Fig. 2(b): FeFET transfer characteristics (8 states) ===\n")
    preisach = PreisachModel()
    fefet = FeFET()
    vgs = np.linspace(0.0, 1.2, 121)
    rows = []
    for state, vth in enumerate(preisach.equally_spaced_vth_levels(8), start=1):
        pulse = preisach.pulse_for_vth(float(vth))
        current = fefet.drain_current(vgs, vds_v=0.1, vth_v=float(vth))
        swing = subthreshold_swing_from_curve(vgs, current)
        rows.append([state, pulse, vth, 1e9 * current.min(), 1e6 * current.max(), 1e3 * swing])
    print(
        format_table(
            ["state", "pulse (V)", "Vth (V)", "Ioff (nA)", "Ion (uA)", "SS (mV/dec)"],
            rows,
            float_format="{:.2f}",
        )
    )
    print()


def part2_distance_function() -> None:
    print("=== Fig. 4: distance function of a 3-bit MCAM cell ===\n")
    analysis = analyze_distance_function(bits=3)
    rows = []
    for distance, conductance in enumerate(analysis.mean_by_distance):
        derivative = analysis.derivative[distance - 1] if distance > 0 else None
        rows.append([distance, 1e6 * conductance, None if derivative is None else 1e6 * derivative])
    print(format_table(["|I - S|", "G (uS)", "dG (uS)"], rows, float_format="{:.3f}"))
    print(
        f"\nconductance is monotone in distance, spans a {analysis.lut.dynamic_range():.0f}x "
        f"dynamic range and its derivative peaks at distance "
        f"{analysis.derivative_peak_distance} — the bell shape of Fig. 4(d).\n"
    )


def part3_gnd_study() -> None:
    print("=== Sec. III-B: G^n_d study (16-cell row) ===\n")
    study = run_gnd_study(bits=3)
    rows = [
        [record["n_cells"], record["distance"], record["total_distance"], record["conductance_uS"]]
        for record in study.as_records()
    ]
    print(format_table(["n cells", "distance", "n x d", "G (uS)"], rows, float_format="{:.3f}"))
    print(
        f"\nG^1_4 > G^4_1: {study.concentrated_beats_spread}, "
        f"G^1_7 >> G^7_1: {study.far_single_cell_dominates} "
        f"(ratio {study.g(1, 7) / study.g(7, 1):.2f}), "
        f"G^1_4 > G^7_1: {study.low_concentrated_beats_high_spread}\n"
    )


def part4_experimental() -> None:
    print("=== Fig. 9(a)/(b): 2-bit distance function, simulation vs experiment ===\n")
    experiment = ANDArrayExperiment(bits=2)
    simulated, measured = experiment.distance_curves(num_repeats=5, rng=SEED)
    rows = [
        [distance, 1e6 * sim, 1e6 * meas]
        for distance, (sim, meas) in enumerate(zip(simulated, measured))
    ]
    print(
        format_table(
            ["|I - S|", "simulated G (uS)", "measured G (uS)"], rows, float_format="{:.3f}"
        )
    )
    correlation = float(np.corrcoef(simulated, measured)[0, 1])
    print(
        f"\nthe measured trend follows the simulated one (correlation {correlation:.3f}) "
        "with the extra noise of verify-free programming — the message of Fig. 9."
    )


if __name__ == "__main__":
    part1_transfer_characteristics()
    part2_distance_function()
    part3_gnd_study()
    part4_experimental()

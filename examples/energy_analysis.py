"""Energy and delay analysis: MCAM vs TCAM vs Jetson TX2 (paper Sec. IV-C).

Three comparisons are printed:

1. cell/array level — search and programming energy of a 64-cell, 100-row
   3-bit MCAM against the same-word-length TCAM (the paper reports ~12%
   lower programming energy and ~56% higher search energy for the MCAM,
   with identical delays),
2. the search-voltage origin of the 56% figure (data-line drive energy),
3. end-to-end MANN inference — CNN feature extraction on the GPU plus the
   memory search, against the fully-GPU Jetson TX2 baseline (the paper
   reports ~4.4x energy and ~4.5x latency improvements, bound by the CNN).

Run with::

    python examples/energy_analysis.py
"""

from __future__ import annotations

from repro.energy import (
    EndToEndComparison,
    compare_mcam_to_tcam,
    mcam_energy_model,
    tcam_energy_model,
)
from repro.utils import format_si, format_table

NUM_FEATURES = 64   # CAM word length (CNN embedding width)
NUM_ENTRIES = 100   # stored memory entries (20-way 5-shot)


def main() -> None:
    print(f"array configuration: {NUM_ENTRIES} rows x {NUM_FEATURES} cells\n")

    mcam = mcam_energy_model(NUM_FEATURES, NUM_ENTRIES, bits=3)
    tcam = tcam_energy_model(NUM_FEATURES, NUM_ENTRIES)
    comparison = compare_mcam_to_tcam(NUM_FEATURES, NUM_ENTRIES, bits=3)

    mcam_search = mcam.search_cost()
    tcam_search = tcam.search_cost()
    mcam_prog = mcam.programming_cost(include_erase=False)
    tcam_prog = tcam.programming_cost(include_erase=False)

    rows = [
        [
            "search energy / query",
            format_si(tcam_search.energy_j, "J"),
            format_si(mcam_search.energy_j, "J"),
            f"{comparison.search_energy_ratio:.2f}x",
        ],
        [
            "  of which data-line drive",
            format_si(tcam_search.breakdown.dataline_j, "J"),
            format_si(mcam_search.breakdown.dataline_j, "J"),
            f"{mcam_search.breakdown.dataline_j / tcam_search.breakdown.dataline_j:.2f}x",
        ],
        [
            "programming energy / word",
            format_si(tcam_prog.energy_j, "J"),
            format_si(mcam_prog.energy_j, "J"),
            f"{comparison.programming_energy_ratio:.2f}x",
        ],
        [
            "search delay",
            format_si(tcam_search.delay_s, "s"),
            format_si(mcam_search.delay_s, "s"),
            f"{comparison.search_delay_ratio:.2f}x",
        ],
    ]
    print(format_table(["quantity", "TCAM", "MCAM 3-bit", "MCAM / TCAM"], rows))
    dataline_ratio = mcam_search.breakdown.dataline_j / tcam_search.breakdown.dataline_j
    print(
        f"\nMCAM search energy overhead: {comparison.search_energy_overhead_percent:+.1f}% "
        "(data-line drive alone: "
        f"{100.0 * (dataline_ratio - 1.0):+.1f}%, "
        "paper: +56%)"
    )
    print(
        f"MCAM programming energy saving: {comparison.programming_energy_saving_percent:.1f}% "
        "(paper: ~12%)\n"
    )

    end_to_end = EndToEndComparison(num_entries=NUM_ENTRIES, num_features=NUM_FEATURES).run()
    rows = [
        [
            record["system"],
            f"{record['energy_uJ']:.1f}",
            f"{record['latency_ms']:.3f}",
            f"{record['energy_improvement']:.2f}x",
            f"{record['latency_improvement']:.2f}x",
        ]
        for record in end_to_end.as_records()
    ]
    print(
        format_table(
            ["system", "energy (uJ)", "latency (ms)", "energy gain", "latency gain"], rows
        )
    )
    print(
        "\nBoth CAM systems land at ~4.4x because the remaining cost is the CNN "
        "feature extraction on the GPU — exactly the bound the paper describes."
    )


if __name__ == "__main__":
    main()
